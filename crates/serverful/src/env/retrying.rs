//! Failure handling and re-arming: storage op retries with
//! exponential backoff and task attempt retries, both re-armed through
//! one-shot kernel futures.

use super::*;

/// A retryable storage request, kept verbatim so a faulted op can be
/// re-issued after backoff.
#[derive(Debug, Clone)]
pub(super) enum StorageSpec {
    Get { host: HostId, bucket: String, key: String },
    Put { host: HostId, bucket: String, key: String, body: ObjectBody },
    List { host: HostId, bucket: String, prefix: String },
    Delete { host: HostId, bucket: String, key: String },
}

impl StorageSpec {
    pub(super) fn host(&self) -> HostId {
        match self {
            StorageSpec::Get { host, .. }
            | StorageSpec::Put { host, .. }
            | StorageSpec::List { host, .. }
            | StorageSpec::Delete { host, .. } => *host,
        }
    }
}

/// Why a task attempt ended prematurely (selects the retry counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum AttemptFailure {
    /// The sandbox died under the task (already torn down by the world).
    SandboxDead,
    /// A storage op of the attempt ran out of its retry budget.
    StorageExhausted,
    /// The monitor abandoned the attempt as a straggler (sandbox still
    /// running; it is billed and abandoned).
    Straggler,
}

impl CloudEnv {
    /// Issues a storage request from its spec, remembering it so a fault
    /// can re-issue it after backoff. All env storage traffic flows
    /// through here.
    pub(super) fn issue_storage(&mut self, spec: StorageSpec, attempts: u32, route: Route) -> OpId {
        // Track the in-flight LIST window of the current monitor
        // generation (see [`Self::monitor_list_overlap`]).
        if let Route::List { job, generation } = &route {
            if let Some(handle) = self.monitors.get_mut(job) {
                if handle.generation == *generation {
                    handle.lists_in_flight += 1;
                    self.max_list_overlap = self.max_list_overlap.max(handle.lists_in_flight);
                }
            }
        }
        // A decentralized pool's dedicated master must stay out of the
        // data path entirely; any op issued from its host is counted so
        // the chaos suite can assert the count stays zero.
        let from_dc_master = self.pools.iter().any(|p| {
            p.cfg.recovery == RecoveryMode::Decentralized
                && !p.consolidated()
                && p.master.as_ref().is_some_and(|m| m.host == spec.host())
        });
        if from_dc_master {
            self.recovery_stats.master_data_ops += 1;
        }
        // Storage is charged synchronously at issue time; bill it to the
        // issuing route's job so concurrent jobs attribute correctly.
        if let Some(job) = Self::route_job(&route) {
            let label = self.jobs[job].name.clone();
            self.world.set_bill_label(label);
        }
        let parent = self.route_span(&route);
        self.world.set_trace_parent(parent);
        let op = match &spec {
            StorageSpec::Get { host, bucket, key } => {
                self.world.get_object(*host, bucket, key)
            }
            StorageSpec::Put {
                host,
                bucket,
                key,
                body,
            } => self.world.put_object(*host, bucket, key, body.clone()),
            StorageSpec::List {
                host,
                bucket,
                prefix,
            } => self.world.list_objects(*host, bucket, prefix),
            StorageSpec::Delete { host, bucket, key } => {
                self.world.delete_object(*host, bucket, key)
            }
        };
        self.world.set_trace_parent(SpanId::NONE);
        self.op_specs.insert(op, (spec, attempts));
        self.op_routes.insert(op, route);
        op
    }

    /// A storage op came back with an injected fault (transient 5xx or
    /// SlowDown). Monitor ops retry indefinitely — a polling loop just
    /// polls again; everything else obeys the job's retry budget and
    /// escalates to a task-level retry when exhausted.
    pub(super) fn on_storage_faulted(&mut self, op: OpId, route: Route, spec: Option<(StorageSpec, u32)>) {
        let Some((spec, attempts)) = spec else {
            unreachable!("faulted op without a stored spec")
        };
        // A faulted LIST leaves the in-flight window now; its retry
        // re-enters through `issue_storage` after the backoff.
        if let Route::List { job, generation } = &route {
            if let Some(handle) = self.monitors.get_mut(job) {
                if handle.generation == *generation {
                    handle.lists_in_flight = handle.lists_in_flight.saturating_sub(1);
                }
            }
        }
        let Some(job) = Self::route_job(&route) else {
            unreachable!("faulted op routed to {route:?}")
        };
        if self.jobs[job].is_finished() {
            return;
        }
        let policy = self.jobs[job].retry.clone();
        // Recovery control traffic (checkpoints, re-adoption fetches,
        // completion counters) retries indefinitely like the monitor:
        // losing one to a transient must not fail a task attempt.
        let monitor = matches!(
            route,
            Route::List { .. }
                | Route::Collect { .. }
                | Route::Checkpoint { .. }
                | Route::Readopt { .. }
                | Route::DcBundle { .. }
                | Route::DcClaim { .. }
                | Route::DcCounter { .. }
        );
        if !monitor && !policy.allows_retry(attempts) {
            self.world.fault_ledger_mut().attempts_exhausted += 1;
            match route {
                Route::Task { job, task } | Route::InputPut { job, task } => {
                    self.task_attempt_failed(job, task, AttemptFailure::StorageExhausted);
                }
                other => unreachable!("storage budget exhausted on {other:?}"),
            }
            return;
        }
        self.world.fault_ledger_mut().storage_retries += 1;
        let retry_now = self.world.now();
        self.world
            .tracer_mut()
            .instant(retry_now, "storage-retry", "retry", "retries");
        // For task-logic ops, the faulted op STAYS in the attempt's
        // pending map as a placeholder (siblings of a multi-op action
        // must not see the map drain and assemble a holey result); the
        // retry swaps in its replacement.
        let (pending_slot, task_attempt) = match &route {
            Route::Task { job, task } => {
                let t = &mut self.jobs[*job].tasks[*task];
                let index = t.run.as_ref().and_then(|r| r.pending.get(&op).copied());
                (index.map(|i| (op, i)), t.attempts)
            }
            _ => (None, 0),
        };
        let backoff = policy
            .jittered_backoff_secs(attempts.min(policy.max_attempts.max(1)), op.index());
        // One-shot backoff future: the world timer below fires at the
        // same queue position the old retry timer did; the future just
        // carries the request across the wait.
        let gate = self.wake_timer(SimDuration::from_secs_f64(backoff));
        let cmds = Rc::clone(&self.env_cmds);
        self.kernel.spawn(async move {
            gate.wait().await;
            cmds.borrow_mut().push_back(EnvCmd::RetryStorage {
                spec,
                attempts,
                inner: Box::new(route),
                pending_slot,
                task_attempt,
            });
        });
    }

    /// A task attempt failed (sandbox death, exhausted storage budget, or
    /// straggler abandonment): tear the attempt down and either schedule
    /// a re-dispatch or fail the job when the budget is spent.
    pub(super) fn task_attempt_failed(&mut self, job: usize, task: usize, why: AttemptFailure) {
        if self.jobs[job].is_finished() {
            return;
        }
        self.clear_task_attempt(job, task, why);
        let attempts = self.jobs[job].tasks[task].attempts;
        let policy = self.jobs[job].retry.clone();
        if !policy.allows_retry(attempts) {
            self.world.fault_ledger_mut().attempts_exhausted += 1;
            let err = ExecError::AttemptsExhausted {
                what: format!("task {task} of job '{}'", self.jobs[job].name),
                attempts: attempts.max(1),
            };
            self.complete_job(job, Some(err));
            return;
        }
        match why {
            AttemptFailure::Straggler => {
                self.world.fault_ledger_mut().stragglers_redispatched += 1;
            }
            _ => self.world.fault_ledger_mut().task_retries += 1,
        }
        if self.world.tracer().is_enabled() {
            let now = self.world.now();
            let name = match why {
                AttemptFailure::Straggler => format!("straggler task {task}"),
                _ => format!("retry task {task}"),
            };
            self.world.tracer_mut().instant(now, &name, "retry", "retries");
        }
        let backoff = policy.jittered_backoff_secs(
            attempts.max(1),
            ((job as u64) << 32) | task as u64,
        );
        self.pending_task_retries.insert((job, task), attempts);
        let gate = self.wake_timer(SimDuration::from_secs_f64(backoff));
        let cmds = Rc::clone(&self.env_cmds);
        self.kernel.spawn(async move {
            gate.wait().await;
            cmds.borrow_mut().push_back(EnvCmd::RetryTask {
                job,
                task,
                attempt: attempts,
            });
        });
    }

    /// Drops every trace of a task's current attempt: pending op routes,
    /// the run, the sandbox (abandoned unless already dead) and the
    /// worker slot (its process goes back to popping).
    pub(super) fn clear_task_attempt(&mut self, job: usize, task: usize, why: AttemptFailure) {
        if let Some(mut run) = self.jobs[job].tasks[task].run.take() {
            let ops: Vec<OpId> = run.pending.keys().copied().collect();
            for op in ops {
                self.op_routes.remove(&op);
                self.op_specs.remove(&op);
            }
            self.end_io_busy(&mut run);
        }
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox.take() {
            self.sandbox_routes.remove(&sandbox);
            if why != AttemptFailure::SandboxDead {
                // Abandon the still-running sandbox: billed (AWS bills
                // failed executions) and booked as waste.
                self.world.faas_abandon(sandbox);
            }
        }
        if let Some((vm_idx, proc)) = self.jobs[job].tasks[task].worker.take() {
            // The freed worker process fetches its next bundle (this
            // task's own requeued bundle arrives only after backoff).
            if let JobBackend::Standalone { pool } = self.jobs[job].backend {
                self.worker_pop(pool, vm_idx, proc);
            }
        }
        let now = self.world.now();
        let span = std::mem::replace(&mut self.jobs[job].tasks[task].span, SpanId::NONE);
        let tracer = self.world.tracer_mut();
        let abandoned = match why {
            AttemptFailure::SandboxDead => "sandbox-dead",
            AttemptFailure::StorageExhausted => "storage-exhausted",
            AttemptFailure::Straggler => "straggler",
        };
        tracer.attr_str(span, "abandoned", abandoned);
        tracer.end(span, now);
        self.jobs[job].tasks[task].phase = TaskPhase::Queued;
        self.jobs[job].tasks[task].started_at = None;
    }

    /// Backoff elapsed: re-dispatch a failed task attempt.
    pub(super) fn on_retry_task(&mut self, job: usize, task: usize, attempt: u32) {
        if self.pending_task_retries.get(&(job, task)) == Some(&attempt) {
            self.pending_task_retries.remove(&(job, task));
        }
        if self.jobs[job].is_finished() {
            return;
        }
        if self.jobs[job].tasks[task].attempts != attempt {
            return; // a newer attempt superseded this timer
        }
        match self.jobs[job].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => self.dispatch_faas_task(job, task, memory_mb, fetch_input, &fleet),
            JobBackend::Standalone { pool } => {
                self.requeue_task(pool, job, task);
            }
        }
    }

    /// Backoff elapsed: re-issue a faulted storage request, unless the
    /// attempt it belonged to was torn down meanwhile.
    pub(super) fn on_retry_storage(
        &mut self,
        spec: StorageSpec,
        attempts: u32,
        inner: Route,
        pending_slot: Option<(OpId, usize)>,
        task_attempt: u32,
    ) {
        let Some(job) = Self::route_job(&inner) else {
            unreachable!("storage retry routed to {inner:?}")
        };
        if self.jobs[job].is_finished() {
            return;
        }
        if let Route::Task { job: j, task } = inner {
            if self.jobs[j].tasks[task].attempts != task_attempt {
                return; // the whole attempt was retried; drop the op
            }
        }
        if !self.world.host_alive(spec.host()) {
            // Issuing host died; task-level recovery owns this — except
            // an in-flight decentralized claim, whose task would
            // otherwise be stranded (it has no worker assigned yet).
            if let Route::DcClaim { pool, task, .. } = inner {
                self.pools[pool].dc_ready.push_back(task);
                self.on_requeue_done(pool);
            }
            return;
        }
        let op = self.issue_storage(spec, attempts + 1, inner.clone());
        if let Route::Task { job: j, task } = inner {
            if let (Some((stale, idx)), Some(run)) =
                (pending_slot, self.jobs[j].tasks[task].run.as_mut())
            {
                run.pending.remove(&stale);
                run.pending.insert(op, idx);
            }
        }
    }
}
