//! The execution environment: world pump, notification routing, and the
//! backend state machines.
//!
//! [`CloudEnv`] owns the simulated [`World`] plus every in-flight job and
//! serverful resource pool. [`FunctionExecutor`](crate::FunctionExecutor)
//! is a thin facade over it: `map` registers a job here, `get_result`
//! pumps the world until the job's monitor declares it finished.
//!
//! ## FaaS job lifecycle (classic Lithops)
//!
//! 1. the client uploads each task's input bundle to object storage and
//!    invokes one sandbox per task;
//! 2. each sandbox cold-starts, fetches its input, runs the logical
//!    function (compute and I/O charged by the world), and writes its
//!    encoded result back to object storage;
//! 3. the client monitors completion by polling the job's result prefix,
//!    then collects and decodes the results.
//!
//! ## Serverful job lifecycle (the paper's contribution)
//!
//! 1. the executor connects to a master (provisioning it if needed);
//! 2. the master *proactively provisions* the required worker VMs —
//!    right-sized from the job's input size — and starts one worker
//!    process per vCPU over SSH;
//! 3. workers load logical functions from the Redis-like KV store on the
//!    master, execute them, and write results to object storage;
//! 4. the master monitors completion, collects the output and notifies
//!    the client; all instances are automatically stopped afterwards
//!    (unless instance reuse is enabled).

use std::cell::{Cell, RefCell};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use cloudsim::{
    CloudConfig, FaultKind, HostId, KvId, Notify, ObjectBody, OpId, OpOutcome, SandboxId,
    Tenancy, VmId, World,
};
use simkernel::aio::{race, AsyncExecutor, CancelToken, Either, Gate};
use simkernel::{SimDuration, SimTime};
use telemetry::trace::SpanId;
use telemetry::{FleetTag, StageSpan, Timeline};

use crate::config::{ExecMode, StandaloneConfig};
use crate::dag::{fan_in_range, FanIn};
use crate::error::ExecError;
use crate::job::{JobBackend, JobState, PendingShape, TaskPhase, TaskRun};
use crate::payload::Payload;
use crate::recovery::{checkpoint_key, JobCheckpoint, MasterCheckpoint, RecoveryMode, RecoveryStats};
use crate::task::{Action, ActionOutcome, TaskStep};

mod failover;
mod monitor;
mod pools;
mod retrying;
mod routes;
mod tasks;

use failover::*;
use monitor::*;
use pools::*;
use retrying::*;
use routes::*;

/// What one [`CloudEnv::pump`] call produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnvEvent {
    /// An internal notification was routed; state may have advanced.
    Progress,
    /// A caller-owned [`CloudEnv::external_timer`] fired; the value is
    /// the token that call returned.
    Timer(u64),
    /// The event queue is empty: nothing will ever happen again unless
    /// the caller issues new work.
    Drained,
}

/// The execution environment. See the [module docs](self).
pub struct CloudEnv {
    world: World,
    timeline: Timeline,
    jobs: Vec<JobState>,
    pools: Vec<StandalonePool>,
    op_routes: HashMap<OpId, Route>,
    /// Replay specs for in-flight storage ops (fault retries).
    op_specs: HashMap<OpId, (StorageSpec, u32)>,
    sandbox_routes: HashMap<SandboxId, Route>,
    vm_routes: HashMap<VmId, Route>,
    timer_routes: HashMap<u64, Route>,
    next_timer: u64,
    scheduler_fleet: FleetTag,
    active_jobs: usize,
    /// Span subsequently submitted jobs parent under (a pipeline's stage
    /// span, for example).
    job_parent: SpanId,
    /// Async kernel driving the control-loop futures (completion
    /// monitors, retry backoffs, straggler sweeps, checkpoint sleep
    /// loops, re-adoption gates) in lockstep with world time.
    kernel: AsyncExecutor,
    /// Commands those futures queue for the environment to execute.
    env_cmds: Rc<RefCell<VecDeque<EnvCmd>>>,
    /// Live completion-monitor handles, one per monitored job.
    monitors: HashMap<usize, MonitorHandle>,
    /// Task retries waiting out their backoff: `(job, task) -> attempt`.
    /// The re-adoption replay consults this so a backed-off task is not
    /// double-dispatched.
    pending_task_retries: HashMap<(usize, usize), u32>,
    /// High-water mark of concurrent same-generation monitor LISTs (the
    /// invariant says it never passes 1).
    max_list_overlap: u32,
    /// Recovery activity counters (checkpoints, re-adoptions,
    /// continuations); empty unless a non-default mode did work.
    recovery_stats: RecoveryStats,
    /// Registered decentralized DAG continuations.
    continuations: Vec<Continuation>,
    /// Per-job decentralized dispatch/counter state.
    dc_jobs: HashMap<usize, DcJob>,
    /// Armed chaos kills: `(pool, event index)`; fired once the routed
    /// event counter passes the index and the master VM is up.
    armed_kills: Vec<(usize, u64)>,
    /// Notifications routed so far (the chaos kills' event clock).
    events_routed: u64,
}

impl std::fmt::Debug for CloudEnv {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudEnv")
            .field("now", &self.world.now())
            .field("jobs", &self.jobs.len())
            .field("pools", &self.pools.len())
            .finish()
    }
}

impl CloudEnv {
    /// Creates an environment over a fresh simulated cloud region.
    pub fn new(config: CloudConfig, seed: u64) -> Self {
        let mut world = World::new(config, seed);
        let scheduler_fleet = world.fleet("scheduler");
        let client_vcpus = world.config().client.vcpus as f64;
        // The Lithops scheduler host counts as provisioned resources for
        // the whole run (Table 3 includes it).
        world
            .cpu_monitor_mut()
            .add_provisioned(scheduler_fleet, SimTime::ZERO, client_vcpus);
        CloudEnv {
            world,
            timeline: Timeline::new(),
            jobs: Vec::new(),
            pools: Vec::new(),
            op_routes: HashMap::new(),
            op_specs: HashMap::new(),
            sandbox_routes: HashMap::new(),
            vm_routes: HashMap::new(),
            timer_routes: HashMap::new(),
            next_timer: 0,
            scheduler_fleet,
            active_jobs: 0,
            job_parent: SpanId::NONE,
            kernel: AsyncExecutor::new(),
            env_cmds: Rc::new(RefCell::new(VecDeque::new())),
            monitors: HashMap::new(),
            pending_task_retries: HashMap::new(),
            max_list_overlap: 0,
            recovery_stats: RecoveryStats::new(),
            continuations: Vec::new(),
            dc_jobs: HashMap::new(),
            armed_kills: Vec::new(),
            events_routed: 0,
        }
    }

    /// Creates an environment with the default cloud configuration.
    pub fn new_default(seed: u64) -> Self {
        Self::new(CloudConfig::default(), seed)
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.world.now()
    }

    /// The underlying world (telemetry, store inspection, seeding).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// The provider region this environment's catalog came from, or
    /// `None` for a hand-rolled catalog no registered region owns.
    /// Drives region-correct backend labels
    /// ([`Backend::label_in`](crate::executor::Backend::label_in)).
    pub fn region(&self) -> Option<&'static cloudsim::provider::RegionProfile> {
        cloudsim::provider::region_of(self.world.config())
    }

    /// Mutable access to the underlying world.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// The timeline of completed stages.
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Turns span tracing on for everything this environment runs. Costs
    /// nothing until enabled; see [`telemetry::trace::Tracer`].
    pub fn enable_tracing(&mut self) {
        self.world.set_tracing(true);
    }

    /// True when the environment records a span trace.
    pub fn tracing_enabled(&self) -> bool {
        self.world.tracer().is_enabled()
    }

    /// Sets the span subsequently submitted jobs parent under (a
    /// pipeline stage span). Pass [`SpanId::NONE`] to clear.
    pub fn set_job_parent(&mut self, span: SpanId) {
        self.job_parent = span;
    }

    /// Annotates a job's root span with a string attribute (no-op when
    /// tracing is off). The DAG scheduler uses this to parent spans on
    /// their dataflow edges: a `deps` attribute naming the upstream
    /// nodes each job waited on.
    pub(crate) fn annotate_job_span(&mut self, job: usize, key: &'static str, value: &str) {
        if !self.world.tracer().is_enabled() {
            return;
        }
        let span = self.jobs[job].span;
        self.world.tracer_mut().attr_str(span, key, value);
    }

    /// Pre-loads an object outside the timed path (experiment setup).
    pub fn seed_object(&mut self, bucket: &str, key: &str, body: ObjectBody) {
        self.world.seed_object(bucket, key, body);
    }

    // ------------------------------------------------------------------
    // Job submission (called by FunctionExecutor)
    // ------------------------------------------------------------------

    pub(crate) fn submit(&mut self, mut job: JobState) -> usize {
        let id = job.id;
        debug_assert_eq!(id, self.jobs.len());
        job.submitted_at = self.world.now();
        if self.world.tracer().is_enabled() {
            let now = self.world.now();
            let name = format!("job:{}", job.name);
            let backend = match &job.backend {
                JobBackend::Faas { .. } => "faas",
                JobBackend::Standalone { .. } => "serverful",
            };
            let parent = self.job_parent;
            let tracer = self.world.tracer_mut();
            let span = tracer.begin(now, &name, "job", "jobs", parent);
            tracer.attr_u64(span, "tasks", job.inputs.len() as u64);
            tracer.attr_str(span, "backend", backend);
            job.span = span;
        }
        self.world.set_bill_label(job.name.clone());
        self.job_activity(1);
        // Client-side setup: serialise the function and its modules and
        // upload them, before any dispatch happens (Lithops does this on
        // every map).
        let setup = job.setup_secs.max(1e-3);
        self.jobs.push(job);
        let client = self.world.client_host();
        let op = self.world.compute(client, setup);
        self.op_routes.insert(op, Route::JobSetup { job: id });
        id
    }

    fn on_job_setup(&mut self, id: usize) {
        match self.jobs[id].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => {
                self.jobs[id].monitor_host = self.world.client_host();
                self.dispatch_faas(id, memory_mb, fetch_input, &fleet);
                self.jobs[id].dispatch_ready = true;
                self.maybe_start_monitor(id);
            }
            JobBackend::Standalone { pool } => {
                self.pools[pool].queue.push_back(id);
                self.pool_try_start(pool);
            }
        }
    }

    // ------------------------------------------------------------------
    // Gated (dataflow) task release
    // ------------------------------------------------------------------

    /// Releases one gated task for dispatch. No-op if the task was never
    /// gated, was already released, or the job already finished.
    pub(crate) fn release_task(&mut self, job: usize, task: usize) {
        if self.jobs[job].is_finished() || !self.jobs[job].tasks[task].held {
            return;
        }
        if self.jobs[job].first_release_at.is_none() {
            self.jobs[job].first_release_at = Some(self.world.now());
        }
        self.jobs[job].tasks[task].held = false;
        self.jobs[job].held_tasks -= 1;
        match self.jobs[job].backend.clone() {
            JobBackend::Faas {
                memory_mb,
                fetch_input,
                fleet,
            } => {
                // Before setup completes, clearing `held` is enough:
                // `dispatch_faas` picks the task up with the rest.
                if self.jobs[job].dispatch_ready {
                    self.dispatch_faas_task(job, task, memory_mb, fetch_input, &fleet);
                }
            }
            JobBackend::Standalone { pool } => {
                // Only once the job owns the pool does its queue exist;
                // a queued job's `pool_start_job` reads `held` later.
                if self.pools[pool].active == Some(job) {
                    self.requeue_task(pool, job, task);
                }
            }
        }
        self.maybe_start_monitor(job);
    }

    /// Releases every still-gated task of a job, in task order.
    pub(crate) fn release_all_tasks(&mut self, job: usize) {
        for task in 0..self.jobs[job].tasks.len() {
            self.release_task(job, task);
        }
    }

    // ------------------------------------------------------------------
    // Partition-level progress (JobHandle accessors)
    // ------------------------------------------------------------------

    pub(crate) fn job_total_tasks(&self, job: usize) -> usize {
        self.jobs[job].tasks.len()
    }

    pub(crate) fn job_done_tasks(&self, job: usize) -> usize {
        self.jobs[job].done_tasks
    }

    pub(crate) fn job_task_done(&self, job: usize, task: usize) -> bool {
        matches!(self.jobs[job].tasks[task].phase, TaskPhase::Done)
    }

    pub(crate) fn job_finished(&self, job: usize) -> bool {
        self.jobs[job].is_finished()
    }

    pub(crate) fn next_job_id(&self) -> usize {
        self.jobs.len()
    }

    /// Pumps the world until `job` finishes; returns its results in
    /// input order.
    ///
    /// External timers firing meanwhile are ignored — a blocking caller
    /// by definition is not juggling other work.
    ///
    /// # Errors
    ///
    /// Propagates task failures, decode failures and stalls.
    pub(crate) fn run_job(&mut self, job: usize) -> Result<Vec<Payload>, ExecError> {
        loop {
            if let Some(result) = self.try_job_result(job) {
                return result;
            }
            match self.pump() {
                EnvEvent::Progress | EnvEvent::Timer(_) => {}
                EnvEvent::Drained => {
                    return Err(ExecError::Stalled(format!(
                        "simulation drained with job {job} ({}) unfinished: {}/{} tasks done",
                        self.jobs[job].name,
                        self.jobs[job].done_tasks,
                        self.jobs[job].tasks.len()
                    )));
                }
            }
        }
    }

    /// Advances the world by one notification and routes it. This is the
    /// non-blocking counterpart of the blocking drive loop behind
    /// [`FunctionExecutor::get_result`]: a driver juggling many
    /// concurrent jobs (the `fleet` crate) calls this in a loop, polling
    /// its jobs with [`FunctionExecutor::try_result`] between events and
    /// receiving its own [`external_timer`]s (arrivals, deadlines) as
    /// [`EnvEvent::Timer`].
    ///
    /// [`FunctionExecutor::get_result`]: crate::FunctionExecutor::get_result
    /// [`FunctionExecutor::try_result`]: crate::FunctionExecutor::try_result
    ///
    /// [`external_timer`]: Self::external_timer
    pub fn pump(&mut self) -> EnvEvent {
        match self.world.step() {
            None => EnvEvent::Drained,
            Some((t, n)) => {
                if let Notify::Timer { tag } = &n {
                    if let Some(Route::External { token }) = self.timer_routes.get(tag) {
                        let token = *token;
                        self.timer_routes.remove(tag);
                        return EnvEvent::Timer(token);
                    }
                }
                self.dispatch(t, n);
                self.events_routed += 1;
                self.drive_kernel();
                self.fire_armed_kills();
                EnvEvent::Progress
            }
        }
    }

    /// Registers a caller-owned timer; [`pump`](Self::pump) surfaces it
    /// as [`EnvEvent::Timer`] with the returned token after `delay` of
    /// virtual time.
    pub fn external_timer(&mut self, delay: SimDuration) -> u64 {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timer_routes.insert(tag, Route::External { token: tag });
        self.world.timer(delay, tag);
        tag
    }

    // ------------------------------------------------------------------
    // Master fault tolerance (see crate::recovery)
    // ------------------------------------------------------------------

    /// Recovery activity of this environment so far (checkpoints,
    /// master replacements, continuations). Empty unless a pool with a
    /// non-default [`RecoveryMode`] actually exercised it.
    pub fn recovery_stats(&self) -> &RecoveryStats {
        &self.recovery_stats
    }

    /// Notifications routed by [`pump`](Self::pump) so far — the event
    /// clock [`arm_master_kill`](Self::arm_master_kill) indices refer to.
    pub fn events_routed(&self) -> u64 {
        self.events_routed
    }

    /// High-water mark of concurrent monitor LISTs belonging to a single
    /// live monitor generation, across every job so far. The monitor
    /// invariant — a monitor future killed and replayed by checkpoint
    /// recovery never forks the LIST cycle — says this never exceeds 1.
    pub fn monitor_list_overlap(&self) -> u32 {
        self.max_list_overlap
    }

    /// Advances the kernel to world time, runs any woken futures, and
    /// executes the commands they queued. Called once per routed event;
    /// this is where kernel *timers* (checkpoint sleeps) fire — gate
    /// wakeups are additionally pumped inside [`Route::Wake`] dispatch
    /// so timer-driven loops act at their exact pre-port position.
    fn drive_kernel(&mut self) {
        self.kernel.advance_to(self.world.now());
        self.kernel.run_ready();
        self.drain_cmds();
        // Futures woken by a drained command (a reply gate opening) park
        // themselves on their next await; no world side effects remain.
        self.kernel.run_ready();
    }

    /// Executes every command the kernel futures queued so far.
    fn drain_cmds(&mut self) {
        loop {
            let cmd = self.env_cmds.borrow_mut().pop_front();
            match cmd {
                None => break,
                Some(EnvCmd::Checkpoint { pool }) => self.write_checkpoint(pool),
                Some(EnvCmd::Readopt { pool, episode }) => {
                    self.begin_readopt(pool, episode)
                }
                Some(EnvCmd::MonitorTick {
                    job,
                    generation,
                    reply,
                }) => self.on_monitor_tick(job, generation, reply),
                Some(EnvCmd::StragglerSweep { job, reply }) => {
                    self.on_straggler_sweep(job, reply)
                }
                Some(EnvCmd::RetryTask { job, task, attempt }) => {
                    self.on_retry_task(job, task, attempt)
                }
                Some(EnvCmd::RetryStorage {
                    spec,
                    attempts,
                    inner,
                    pending_slot,
                    task_attempt,
                }) => self.on_retry_storage(spec, attempts, *inner, pending_slot, task_attempt),
            }
        }
    }

    /// The finished job's results (or error), if it has finished.
    /// Returns `None` while the job is still running. Calling this twice
    /// for the same finished job yields empty results — take it once.
    pub(crate) fn try_job_result(
        &mut self,
        job: usize,
    ) -> Option<Result<Vec<Payload>, ExecError>> {
        if !self.jobs[job].is_finished() {
            return None;
        }
        Some(self.take_job_result(job))
    }

    /// Extracts a finished job's results in input order.
    fn take_job_result(&mut self, job: usize) -> Result<Vec<Payload>, ExecError> {
        if let Some(err) = self.jobs[job].error.clone() {
            return Err(err);
        }
        let results = std::mem::take(&mut self.jobs[job].results);
        results
            .into_iter()
            .enumerate()
            .map(|(i, r)| {
                r.ok_or_else(|| {
                    ExecError::TaskFailed(format!("task {i} produced no result"))
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Dispatch
    // ------------------------------------------------------------------

    fn dispatch(&mut self, _t: SimTime, n: Notify) {
        match n {
            Notify::Op { op, outcome } => {
                let Some(route) = self.op_routes.remove(&op) else {
                    self.op_specs.remove(&op);
                    return; // op of an already-failed job or torn-down attempt
                };
                if let OpOutcome::Faulted { .. } = outcome {
                    let spec = self.op_specs.remove(&op);
                    self.on_storage_faulted(op, route, spec);
                    return;
                }
                self.op_specs.remove(&op);
                self.on_op(route, op, outcome);
            }
            Notify::SandboxUp { sandbox } => {
                // The route stays registered until the sandbox is
                // released: a mid-task crash must still find its task.
                if let Some(route) = self.sandbox_routes.get(&sandbox).cloned() {
                    self.on_sandbox_up(route, sandbox);
                }
            }
            Notify::SandboxFailed { sandbox, .. } => {
                if let Some(Route::Task { job, task }) = self.sandbox_routes.remove(&sandbox) {
                    self.jobs[job].tasks[task].sandbox = None;
                    self.task_attempt_failed(job, task, AttemptFailure::SandboxDead);
                }
            }
            Notify::VmUp { vm } => {
                // The route stays registered: a mid-job VM loss (long
                // after boot) must still find its pool slot.
                if let Some(route) = self.vm_routes.get(&vm).cloned() {
                    self.on_vm_up(route, vm);
                }
            }
            Notify::VmFailed { vm, fault } => {
                if let Some(route) = self.vm_routes.remove(&vm) {
                    self.on_pool_vm_failed(route, fault);
                }
            }
            Notify::Timer { tag } => {
                if let Some(route) = self.timer_routes.remove(&tag) {
                    self.on_timer(route);
                }
            }
            _ => {}
        }
    }

    /// The span a task's I/O should parent under: the current attempt's
    /// span, falling back to the job span before dispatch.
    fn task_span(&self, job: usize, task: usize) -> SpanId {
        let t = &self.jobs[job].tasks[task];
        if t.span.is_none() {
            self.jobs[job].span
        } else {
            t.span
        }
    }

    /// The trace span ops issued for `route` parent under.
    fn route_span(&self, route: &Route) -> SpanId {
        match route {
            Route::Task { job, task } | Route::InputPut { job, task } => {
                self.task_span(*job, *task)
            }
            other => match Self::route_job(other) {
                Some(job) => self.jobs[job].span,
                None => SpanId::NONE,
            },
        }
    }

    /// Begins the span of a task's next dispatch attempt. Returns
    /// [`SpanId::NONE`] (and allocates nothing) when tracing is off.
    fn begin_attempt_span(&mut self, job: usize, task: usize, fleet: &str) -> SpanId {
        if !self.world.tracer().is_enabled() {
            return SpanId::NONE;
        }
        let now = self.world.now();
        let name = format!("task {task}");
        let stage = self.jobs[job].name.clone();
        let parent = self.jobs[job].span;
        let attempt = u64::from(self.jobs[job].tasks[task].attempts) + 1;
        let tracer = self.world.tracer_mut();
        let span = tracer.begin(now, &name, "task", "tasks", parent);
        tracer.attr_str(span, "stage", &stage);
        tracer.attr_u64(span, "task", task as u64);
        tracer.attr_u64(span, "attempt", attempt);
        tracer.attr_str(span, "fleet", fleet);
        span
    }

    fn set_timer(&mut self, delay: SimDuration, route: Route) {
        let tag = self.next_timer;
        self.next_timer += 1;
        self.timer_routes.insert(tag, route);
        self.world.timer(delay, tag);
    }

    /// Arms a world-clock timer that opens a fresh kernel gate when it
    /// fires ([`Route::Wake`]) — the bridge between the control-loop
    /// futures and the world's deterministic event order. World timers
    /// are never cancelled: a stale fire opens an orphaned gate and is
    /// still counted by the event clock, exactly like the pre-port
    /// stale poll timers.
    fn wake_timer(&mut self, delay: SimDuration) -> Gate {
        let gate = self.kernel.gate();
        self.set_timer(delay, Route::Wake { gate: gate.clone() });
        gate
    }

    fn job_activity(&mut self, delta: i64) {
        let now = self.world.now();
        let was = self.active_jobs;
        self.active_jobs = (self.active_jobs as i64 + delta) as usize;
        // The scheduler burns roughly one vCPU while any job is in
        // flight (dispatching, polling, collecting).
        if was == 0 && self.active_jobs > 0 {
            self.world
                .cpu_monitor_mut()
                .add_busy(self.scheduler_fleet, now, 1.0);
        } else if was > 0 && self.active_jobs == 0 {
            self.world
                .cpu_monitor_mut()
                .add_busy(self.scheduler_fleet, now, -1.0);
        }
    }

    // ------------------------------------------------------------------
    // FaaS backend
    // ------------------------------------------------------------------
}

/// Draws a latency from the world's RNG-free path: uses mean only when
/// std is zero. Implemented as a free function to avoid borrowing `self`
/// twice.
fn world_latency(world: &mut World, (mean, std): (f64, f64)) -> SimDuration {
    // The world does not expose its RNG; derive jitter deterministically
    // from current time to keep runs reproducible without threading a
    // second RNG through the env.
    let jitter = ((world.now().as_micros() % 997) as f64 / 997.0 - 0.5) * 2.0 * std;
    SimDuration::from_secs_f64((mean + jitter).max(0.1))
}
