//! Serverful (standalone) pools: VM provisioning, master/worker
//! lifecycle, the KV work queue, and pool idle/teardown.

use super::*;

/// Which pool VM a lifecycle notification concerns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum PoolSlot {
    Master,
    Worker(usize),
}

/// Lifecycle of a pool VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum VmPhase {
    Booting,
    SshSetup,
    Ready,
    /// The slot's VM is gone and its provisioning budget is spent; a new
    /// job re-provisions it with a fresh budget.
    Dead,
}

#[derive(Debug)]
pub(super) struct PoolVm {
    pub(super) vm: VmId,
    pub(super) host: HostId,
    pub(super) itype: cloudsim::InstanceType,
    pub(super) phase: VmPhase,
    /// Slot generation; bumped on every (re-)provision so in-flight pops
    /// and SSH timers of a replaced VM can be told apart.
    pub(super) epoch: u64,
    /// Provisioning attempts charged against this slot for the current
    /// job (boot failures and losses both consume the budget).
    pub(super) provision_attempts: u32,
    /// Spot preemptions this slot has absorbed for the current job;
    /// carried across replacements so a [`BidPolicy::Spot`] budget can
    /// fall the slot back to on-demand.
    pub(super) preemptions: u32,
}

/// A serverful resource pool: one per executor using the VM backend.
pub(crate) struct StandalonePool {
    pub(super) cfg: StandaloneConfig,
    /// Dedicated master VM (fleet mode). In consolidated mode the single
    /// worker VM doubles as the master.
    pub(super) master: Option<PoolVm>,
    pub(super) kv: Option<KvId>,
    pub(super) workers: Vec<PoolVm>,
    pub(super) queue: VecDeque<usize>,
    pub(super) active: Option<usize>,
    /// Pushes still outstanding before workers may start popping.
    pub(super) pushes_outstanding: usize,
    /// Worker processes that popped an empty queue and went idle; woken
    /// when a requeued bundle lands.
    pub(super) idle_procs: Vec<(usize, usize)>,
    /// Source of slot epochs.
    pub(super) epoch_counter: u64,
    /// Idle-window generation for the keep-alive timer (see
    /// [`Route::PoolIdle`]).
    pub(super) idle_epoch: u64,
    pub(super) fleet_name: String,
    /// Decentralized mode: tasks whose bundles sit in storage awaiting
    /// a worker claim, in dispatch order.
    pub(super) dc_ready: VecDeque<usize>,
    /// True between a master loss and the replacement's checkpoint
    /// replay (Checkpointed mode); dispatch defers to the re-adoption.
    pub(super) recovering: bool,
    /// Master-recovery generation; stale re-adoption fetches of an
    /// earlier episode are dropped.
    pub(super) recovery_episode: u64,
    /// Monotonic checkpoint sequence number (survives master swaps via
    /// the snapshot itself).
    pub(super) ckpt_seq: u64,
    /// Liveness flag of the current checkpoint sleep loop; cleared when
    /// the pool's job finishes so the loop exits on its next fire.
    pub(super) ckpt_active: Option<Rc<Cell<bool>>>,
    /// Gate the pending re-adoption future waits on; opened when the
    /// replacement master finishes SSH setup.
    pub(super) readopt_gate: Option<simkernel::aio::Gate>,
}

impl StandalonePool {
    pub(super) fn consolidated(&self) -> bool {
        matches!(self.cfg.exec_mode, ExecMode::Consolidated)
    }

    pub(super) fn master_host(&self) -> HostId {
        if self.consolidated() {
            self.workers[0].host
        } else {
            self.master.as_ref().expect("master missing").host
        }
    }

    /// The VM currently acting as master (the single worker VM in
    /// consolidated mode), if the slot is populated.
    pub(super) fn master_pv(&self) -> Option<&PoolVm> {
        if self.consolidated() {
            self.workers.first()
        } else {
            self.master.as_ref()
        }
    }

    pub(super) fn all_ready(&self) -> bool {
        let workers_ready = !self.workers.is_empty()
            && self.workers.iter().all(|w| w.phase == VmPhase::Ready);
        if self.consolidated() {
            workers_ready
        } else {
            workers_ready && self.master.as_ref().is_some_and(|m| m.phase == VmPhase::Ready)
        }
    }
}

impl CloudEnv {
    pub(crate) fn create_pool(&mut self, cfg: StandaloneConfig) -> usize {
        let idx = self.pools.len();
        let fleet_name = cfg
            .fleet_label
            .clone()
            .unwrap_or_else(|| format!("standalone-{idx}"));
        self.pools.push(StandalonePool {
            cfg,
            master: None,
            kv: None,
            workers: Vec::new(),
            queue: VecDeque::new(),
            active: None,
            pushes_outstanding: 0,
            idle_procs: Vec::new(),
            epoch_counter: 0,
            idle_epoch: 0,
            fleet_name,
            dc_ready: VecDeque::new(),
            recovering: false,
            recovery_episode: 0,
            ckpt_seq: 0,
            ckpt_active: None,
            readopt_gate: None,
        });
        idx
    }

    /// True when every VM of the pool is provisioned and SSH-ready — a
    /// job submitted now starts without paying boot time.
    pub(crate) fn pool_ready(&self, pool: usize) -> bool {
        self.pools[pool].all_ready()
    }

    /// Jobs currently running or queued on the pool (lease pressure).
    pub(crate) fn pool_backlog(&self, pool: usize) -> usize {
        self.pools[pool].queue.len() + usize::from(self.pools[pool].active.is_some())
    }

    /// Tears a pool's VMs down (executor shutdown).
    pub(crate) fn shutdown_pool(&mut self, pool: usize) {
        let p = &mut self.pools[pool];
        assert!(p.active.is_none(), "shutdown with an active job");
        let mut terminate = Vec::new();
        for w in p.workers.drain(..) {
            self.vm_routes.remove(&w.vm);
            if w.phase == VmPhase::Ready {
                terminate.push(w.vm);
            }
        }
        if let Some(m) = p.master.take() {
            self.vm_routes.remove(&m.vm);
            if m.phase == VmPhase::Ready {
                terminate.push(m.vm);
            }
        }
        p.kv = None;
        for vm in terminate {
            self.world.vm_terminate(vm);
        }
    }

    pub(super) fn pool_try_start(&mut self, pool: usize) {
        if self.pools[pool].active.is_some() {
            return;
        }
        let Some(&job) = self.pools[pool].queue.front() else {
            return;
        };
        // Proactive provisioning: figure out the fleet this job needs.
        if !self.pool_ensure_infra(pool, job) {
            return; // infra still coming up; retried on VM readiness
        }
        self.pools[pool].queue.pop_front();
        self.pools[pool].active = Some(job);
        // A job starting closes any idle window: pending keep-alive
        // timers must not tear down the pool under it.
        self.pools[pool].idle_epoch += 1;
        self.pool_start_job(pool, job);
    }

    /// Provisions (or re-provisions) a pool VM slot, protecting master
    /// hosts from injected VM loss (the paper's design assumes the
    /// orchestrating master stays up; boot failures still apply).
    ///
    /// `preemptions` is the slot's spot-reclaim history for the current
    /// job: under [`BidPolicy::Spot`] a worker slot bids spot until that
    /// history exhausts the policy's budget, then falls back to
    /// on-demand. Masters (including the consolidated single VM, which
    /// doubles as one) always run on-demand.
    pub(super) fn pool_provision(
        &mut self,
        pool: usize,
        slot: PoolSlot,
        itype: cloudsim::InstanceType,
        provision_attempts: u32,
        preemptions: u32,
    ) {
        let fleet_name = self.pools[pool].fleet_name.clone();
        // Pool VMs outlive individual jobs (reuse, keep-alive), so their
        // uptime bills under the pool's fleet label, not whichever job
        // happens to be current when they terminate.
        self.world.set_bill_label(fleet_name.clone());
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        let tenancy = match self.pools[pool].cfg.bid {
            crate::sizing::BidPolicy::Spot { max_preemptions }
                if !is_master_vm && preemptions < max_preemptions =>
            {
                Tenancy::Spot
            }
            _ => Tenancy::OnDemand,
        };
        let vm = self.world.vm_provision_with(&itype, &fleet_name, tenancy);
        let host = self.world.vm_host(vm);
        self.pools[pool].epoch_counter += 1;
        let epoch = self.pools[pool].epoch_counter;
        let pv = PoolVm {
            vm,
            host,
            itype,
            phase: VmPhase::Booting,
            epoch,
            provision_attempts,
            preemptions,
        };
        match slot {
            PoolSlot::Master => self.pools[pool].master = Some(pv),
            PoolSlot::Worker(i) => {
                let workers = &mut self.pools[pool].workers;
                if i < workers.len() {
                    workers[i] = pv;
                } else {
                    debug_assert_eq!(i, workers.len());
                    workers.push(pv);
                }
            }
        }
        // Only the paper's Protected stance exempts the master from
        // injected loss; the recovery modes let it die and survive it.
        if is_master_vm && self.pools[pool].cfg.recovery == RecoveryMode::Protected {
            self.world.protect_host(host);
        }
        self.vm_routes.insert(vm, Route::PoolVm { pool, slot, epoch });
    }

    /// Re-provisions any slot left `Dead` by an exhausted replacement
    /// budget, with a fresh budget (called when a new job starts).
    pub(super) fn pool_replace_dead(&mut self, pool: usize) {
        if let Some(m) = &self.pools[pool].master {
            if m.phase == VmPhase::Dead {
                let itype = m.itype;
                self.pool_provision(pool, PoolSlot::Master, itype, 1, 0);
            }
        }
        let dead: Vec<(usize, cloudsim::InstanceType)> = self.pools[pool]
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.phase == VmPhase::Dead)
            .map(|(i, w)| (i, w.itype))
            .collect();
        for (i, itype) in dead {
            self.pool_provision(pool, PoolSlot::Worker(i), itype, 1, 0);
        }
    }

    /// Ensures master + workers exist and are ready. Returns true when
    /// everything is ready now.
    pub(super) fn pool_ensure_infra(&mut self, pool: usize, job: usize) -> bool {
        self.pool_replace_dead(pool);
        let consolidated = self.pools[pool].consolidated();
        if consolidated {
            // Single right-sized VM: sizing from the job's input bytes.
            let wanted = match &self.pools[pool].cfg.instance_override {
                Some(name) => *self
                    .world
                    .lookup_instance(name)
                    .unwrap_or_else(|| panic!("unknown instance type {name}")),
                None => *self.pools[pool]
                    .cfg
                    .sizing
                    .choose_from(self.world.catalog(), self.jobs[job].input_data_size()),
            };
            if self.pools[pool].workers.is_empty() {
                self.pool_provision(pool, PoolSlot::Worker(0), wanted, 1, 0);
                return false;
            }
            // An existing VM is reused only if it is big enough.
            let current = &self.pools[pool].workers[0];
            if current.itype.mem_gib < wanted.mem_gib && current.phase == VmPhase::Ready {
                let old = self.pools[pool].workers.remove(0);
                self.vm_routes.remove(&old.vm);
                self.world.vm_terminate(old.vm);
                self.pools[pool].kv = None;
                return self.pool_ensure_infra(pool, job);
            }
            return self.pools[pool].all_ready();
        }
        // Fleet mode: dedicated master + N workers of a fixed type.
        let ExecMode::Fleet {
            instance_type,
            count,
        } = self.pools[pool].cfg.exec_mode.clone()
        else {
            unreachable!()
        };
        if self.pools[pool].master.is_none() {
            let master_name = self.pools[pool].cfg.master_instance.clone();
            let itype = *self
                .world
                .lookup_instance(&master_name)
                .unwrap_or_else(|| panic!("unknown instance type {master_name}"));
            self.pool_provision(pool, PoolSlot::Master, itype, 1, 0);
        }
        let itype = *self
            .world
            .lookup_instance(&instance_type)
            .unwrap_or_else(|| panic!("unknown instance type {instance_type}"));
        while self.pools[pool].workers.len() < count {
            let slot = self.pools[pool].workers.len();
            self.pool_provision(pool, PoolSlot::Worker(slot), itype, 1, 0);
        }
        self.pools[pool].all_ready()
    }

    pub(super) fn on_vm_up(&mut self, route: Route, vm: VmId) {
        let Route::PoolVm { pool, slot, epoch } = route else {
            unreachable!("vm route is always a pool vm")
        };
        match self.pool_vm_opt(pool, slot) {
            Some(pv) if pv.epoch == epoch => {}
            _ => {
                // Slot gone (pool shut down) or replaced: the VM is
                // orphaned; stop paying for it.
                self.vm_routes.remove(&vm);
                self.world.vm_terminate(vm);
                return;
            }
        }
        let ssh = self.pools[pool].cfg.ssh_setup;
        self.pool_vm_mut(pool, slot).phase = VmPhase::SshSetup;
        let delay = world_latency(&mut self.world, ssh);
        self.set_timer(delay, Route::PoolVm { pool, slot, epoch });
    }

    pub(super) fn on_pool_vm_ready(&mut self, pool: usize, slot: PoolSlot, epoch: u64) {
        match self.pool_vm_opt(pool, slot) {
            Some(pv) if pv.epoch == epoch && pv.phase == VmPhase::SshSetup => {
                pv.phase = VmPhase::Ready;
            }
            _ => return, // stale SSH timer of a replaced VM or shut pool
        }
        // The master's KV server starts as soon as its VM is ready.
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        let kv_dead = self.pools[pool]
            .kv
            .is_some_and(|kv| !self.world.kv_alive(kv));
        if is_master_vm
            && self.pools[pool].cfg.recovery != RecoveryMode::Decentralized
            && (self.pools[pool].kv.is_none() || kv_dead)
        {
            let vm = self.pool_vm_mut(pool, slot).vm;
            let kv = self.world.kv_create(vm);
            self.pools[pool].kv = Some(kv);
        }
        // A replacement master finishing SSH setup lets the pending
        // re-adoption proceed (Checkpointed mode).
        if is_master_vm && self.pools[pool].recovering {
            if let Some(gate) = self.pools[pool].readopt_gate.clone() {
                gate.open();
            }
        }
        self.pool_try_start(pool);
        // A replacement worker joining mid-job starts its processes
        // immediately (the initial cohort is started by on_push_done).
        if let PoolSlot::Worker(i) = slot {
            if self.pools[pool].active.is_some() && self.pools[pool].pushes_outstanding == 0 {
                let vcpus = self.pools[pool].workers[i].itype.vcpus as usize;
                for proc in 0..vcpus {
                    self.worker_pop(pool, i, proc);
                }
            }
        }
    }

    /// A pool VM failed: boot failure, mid-job loss or spot preemption.
    /// Replacement VMs are provisioned into the same slot while the
    /// budget lasts; a lost worker's in-flight tasks are requeued on the
    /// master's KV queue. A preempted slot's reclaim history advances,
    /// and the replacement falls back to on-demand once the bid policy's
    /// budget is spent (ledgered as a spot fallback).
    pub(super) fn on_pool_vm_failed(&mut self, route: Route, fault: FaultKind) {
        let Route::PoolVm { pool, slot, epoch } = route else {
            unreachable!("vm route is always a pool vm")
        };
        let preempted = fault == FaultKind::SpotPreemption;
        let (itype, attempts, preemptions, was_ready) = match self.pool_vm_opt(pool, slot) {
            Some(pv) if pv.epoch == epoch => {
                let was_ready = pv.phase == VmPhase::Ready;
                pv.phase = VmPhase::Dead;
                if preempted {
                    pv.preemptions += 1;
                }
                (pv.itype, pv.provision_attempts, pv.preemptions, was_ready)
            }
            // Stale failure of a replaced VM or a shut-down pool.
            _ => return,
        };
        if preempted {
            if let crate::sizing::BidPolicy::Spot { max_preemptions } = self.pools[pool].cfg.bid
            {
                // The reclaim that exhausts the budget flips this slot's
                // replacements to on-demand; count the concession once.
                if preemptions == max_preemptions {
                    self.world.fault_ledger_mut().spot_fallbacks += 1;
                }
            }
        }
        if let PoolSlot::Worker(i) = slot {
            self.pools[pool].idle_procs.retain(|&(v, _)| v != i);
            if was_ready {
                self.pool_worker_lost(pool, i);
            }
        }
        let is_master_vm = match slot {
            PoolSlot::Master => true,
            PoolSlot::Worker(0) => self.pools[pool].consolidated(),
            _ => false,
        };
        if is_master_vm && was_ready {
            let mode = self.pools[pool].cfg.recovery;
            self.on_master_lost(pool, mode);
            if mode == RecoveryMode::Decentralized && matches!(slot, PoolSlot::Master) {
                // A dedicated decentralized master is pure overhead once
                // the job is submitted: don't even replace it.
                return;
            }
        }
        let budget = self.pools[pool].cfg.max_provision_attempts.max(1);
        if attempts >= budget {
            self.world.fault_ledger_mut().attempts_exhausted += 1;
            self.fail_pool_job(
                pool,
                ExecError::InfraFailed(format!(
                    "pool VM slot {slot:?} failed {attempts} provisioning attempts"
                )),
            );
            return;
        }
        self.world.fault_ledger_mut().vm_replacements += 1;
        self.pool_provision(pool, slot, itype, attempts + 1, preemptions);
    }

    /// Requeues every unfinished task that was running on a lost worker
    /// VM. Attempt budgets are charged per task; an exhausted task fails
    /// the job.
    pub(super) fn pool_worker_lost(&mut self, pool: usize, vm_idx: usize) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        let lost: Vec<usize> = self.jobs[job]
            .tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                matches!(t.worker, Some((v, _)) if v == vm_idx)
                    && !matches!(t.phase, TaskPhase::Done)
            })
            .map(|(i, _)| i)
            .collect();
        for task in lost {
            if self.jobs[job].is_finished() {
                return;
            }
            let attempts = self.jobs[job].tasks[task].attempts;
            if !self.jobs[job].retry.allows_retry(attempts) {
                self.world.fault_ledger_mut().attempts_exhausted += 1;
                let err = ExecError::AttemptsExhausted {
                    what: format!("task {task} of job '{}'", self.jobs[job].name),
                    attempts: attempts.max(1),
                };
                self.complete_job(job, Some(err));
                return;
            }
            // Tear the attempt down without touching the (dead) worker's
            // process bookkeeping, then push the bundle back.
            self.jobs[job].tasks[task].worker = None;
            self.clear_task_attempt(job, task, AttemptFailure::SandboxDead);
            self.world.fault_ledger_mut().task_retries += 1;
            self.requeue_task(pool, job, task);
        }
    }

    /// Pushes a task's bundle back onto the master's KV queue (worker
    /// loss or a storage-exhausted VM attempt).
    pub(super) fn requeue_task(&mut self, pool: usize, job: usize, task: usize) {
        if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
            self.dc_dispatch_task(pool, job, task);
            return;
        }
        if self.pools[pool].recovering {
            // The replacement master's checkpoint replay re-dispatches
            // everything unacknowledged; queueing now would race it.
            return;
        }
        let Some(kv) = self.pools[pool].kv else {
            return; // pool torn down meanwhile
        };
        if !self.world.kv_alive(kv) {
            // Master (and queue) gone without a recovery mode: the
            // bundle has nowhere to go — the job stalls (Protected).
            return;
        }
        let master = self.pools[pool].master_host();
        let queue = format!("job-{job}");
        let bundle = Payload::List(vec![
            Payload::U64(task as u64),
            self.jobs[job].inputs[task].clone(),
        ]);
        let body = ObjectBody::real(bundle.encode());
        self.world.set_trace_parent(self.jobs[job].span);
        let op = self.world.kv_push(master, kv, &queue, body);
        self.world.set_trace_parent(SpanId::NONE);
        self.op_routes.insert(op, Route::Requeue { pool });
    }

    /// A requeued bundle landed: wake idle worker processes so one of
    /// them picks it up.
    pub(super) fn on_requeue_done(&mut self, pool: usize) {
        let idle: Vec<(usize, usize)> = self.pools[pool].idle_procs.drain(..).collect();
        for (vm_idx, proc) in idle {
            self.worker_pop(pool, vm_idx, proc);
        }
    }

    /// Fails the pool's current job — or, before any job is active, the
    /// one waiting at the head of the queue — with `err`.
    pub(super) fn fail_pool_job(&mut self, pool: usize, err: ExecError) {
        if let Some(job) = self.pools[pool].active {
            self.complete_job(job, Some(err));
        } else if let Some(job) = self.pools[pool].queue.pop_front() {
            self.complete_job(job, Some(err));
        }
    }

    pub(super) fn pool_vm_mut(&mut self, pool: usize, slot: PoolSlot) -> &mut PoolVm {
        self.pool_vm_opt(pool, slot).expect("pool VM slot missing")
    }

    /// The slot's VM, if the slot still exists (pool shutdowns drain the
    /// worker list while replacements may still be booting).
    pub(super) fn pool_vm_opt(&mut self, pool: usize, slot: PoolSlot) -> Option<&mut PoolVm> {
        match slot {
            PoolSlot::Master => self.pools[pool].master.as_mut(),
            PoolSlot::Worker(i) => self.pools[pool].workers.get_mut(i),
        }
    }

    /// Infra ready: master pushes every task bundle into its KV queue.
    /// Gated tasks are skipped — their bundles arrive one by one through
    /// `release_task` as upstream partitions complete.
    pub(super) fn pool_start_job(&mut self, pool: usize, job: usize) {
        match self.pools[pool].cfg.recovery {
            RecoveryMode::Decentralized => {
                self.dc_start_job(pool, job);
                return;
            }
            RecoveryMode::Checkpointed => self.start_checkpoint_loop(pool),
            RecoveryMode::Protected => {}
        }
        let kv = self.pools[pool].kv.expect("pool started without KV");
        let master = self.pools[pool].master_host();
        self.jobs[job].monitor_host = master;
        let n = self.jobs[job].inputs.len();
        let queue = format!("job-{job}");
        let ready: Vec<usize> = (0..n)
            .filter(|&t| !self.jobs[job].tasks[t].held)
            .collect();
        self.pools[pool].pushes_outstanding = ready.len();
        self.world.set_trace_parent(self.jobs[job].span);
        for task in ready {
            let bundle = Payload::List(vec![
                Payload::U64(task as u64),
                self.jobs[job].inputs[task].clone(),
            ]);
            let body = ObjectBody::real(bundle.encode());
            let op = self.world.kv_push(master, kv, &queue, body);
            self.op_routes.insert(op, Route::Push { pool, job });
        }
        self.world.set_trace_parent(SpanId::NONE);
        if self.pools[pool].pushes_outstanding == 0 {
            // Fully gated job: workers spin up idle and wait for
            // released bundles.
            self.pool_pushes_complete(pool, job);
        }
    }

    pub(super) fn on_push_done(&mut self, pool: usize, job: usize) {
        self.pools[pool].pushes_outstanding -= 1;
        if self.pools[pool].pushes_outstanding > 0 {
            return;
        }
        self.pool_pushes_complete(pool, job);
    }

    /// All initially-queued bundles landed: start one worker process per
    /// vCPU of every worker that is up (replacements still booting join
    /// on ready) and arm the master's result monitor.
    pub(super) fn pool_pushes_complete(&mut self, pool: usize, job: usize) {
        let worker_specs: Vec<(usize, usize)> = self.pools[pool]
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| w.phase == VmPhase::Ready)
            .flat_map(|(vm_idx, w)| {
                (0..w.itype.vcpus as usize).map(move |proc| (vm_idx, proc))
            })
            .collect();
        for (vm_idx, proc) in worker_specs {
            self.worker_pop(pool, vm_idx, proc);
        }
        // The master begins monitoring result objects (once every gated
        // task has been released).
        self.jobs[job].dispatch_ready = true;
        self.maybe_start_monitor(job);
    }

    pub(super) fn worker_pop(&mut self, pool: usize, vm_idx: usize, proc: usize) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
            self.worker_claim(pool, job, vm_idx, proc);
            return;
        }
        let Some(kv) = self.pools[pool].kv else {
            return;
        };
        let w = &self.pools[pool].workers[vm_idx];
        if w.phase != VmPhase::Ready {
            return;
        }
        let host = w.host;
        let epoch = w.epoch;
        if !self.world.host_alive(host) {
            return; // VM just died; its VmFailed notification is queued
        }
        if !self.world.kv_alive(kv) {
            // Queue died with the master; idle until recovery (or the
            // stall, under Protected) resolves the run.
            self.pools[pool].idle_procs.push((vm_idx, proc));
            return;
        }
        let queue = format!("job-{job}");
        self.world.set_trace_parent(self.jobs[job].span);
        let op = self.world.kv_pop(host, kv, &queue);
        self.world.set_trace_parent(SpanId::NONE);
        self.op_routes.insert(
            op,
            Route::Pop {
                pool,
                vm_idx,
                proc,
                epoch,
            },
        );
    }

    pub(super) fn on_pop(
        &mut self,
        pool: usize,
        vm_idx: usize,
        proc: usize,
        epoch: u64,
        outcome: OpOutcome,
    ) {
        let Some(job) = self.pools[pool].active else {
            return;
        };
        let OpOutcome::KvValue { body } = outcome else {
            unreachable!("pop yielded a non-KV outcome")
        };
        let stale = self.pools[pool].workers[vm_idx].epoch != epoch
            || !self.world.host_alive(self.pools[pool].workers[vm_idx].host);
        if stale {
            // Pop issued by a since-lost worker VM (or one whose crash
            // notification is still queued): the popped bundle must not
            // vanish with it — push it back for the others.
            if let Some(body) = body {
                if let Some(kv) = self.pools[pool].kv {
                    let master = self.pools[pool].master_host();
                    let queue = format!("job-{job}");
                    self.world.set_trace_parent(self.jobs[job].span);
                    let op = self.world.kv_push(master, kv, &queue, body);
                    self.world.set_trace_parent(SpanId::NONE);
                    self.op_routes.insert(op, Route::Requeue { pool });
                }
            }
            return;
        }
        let Some(body) = body else {
            // Queue drained; the worker process idles until a requeued
            // bundle wakes it.
            self.pools[pool].idle_procs.push((vm_idx, proc));
            return;
        };
        let bytes = body.bytes().expect("task bundles are always real bytes");
        let bundle = Payload::decode(bytes).expect("task bundle decodes");
        let items = bundle.as_list().expect("bundle is a list");
        let task = items[0].as_u64().expect("bundle[0] is the index") as usize;
        let input = items[1].clone();
        let host = self.pools[pool].workers[vm_idx].host;
        let kv = self.pools[pool].kv;
        let fleet = self.pools[pool].fleet_name.clone();
        let span = self.begin_attempt_span(job, task, &fleet);
        let now = self.world.now();
        let t = &mut self.jobs[job].tasks[task];
        t.worker = Some((vm_idx, proc));
        t.attempts += 1;
        t.started_at = Some(now);
        t.span = span;
        self.start_task(job, task, host, kv, &input);
    }

    // ------------------------------------------------------------------
    // Checkpointed master recovery (RecoveryMode::Checkpointed)
    // ------------------------------------------------------------------

    pub(super) fn pool_job_finished(&mut self, pool: usize, _job: usize) {
        self.pools[pool].active = None;
        self.pools[pool].recovering = false;
        self.pools[pool].readopt_gate = None;
        self.pools[pool].dc_ready.clear();
        if let Some(flag) = self.pools[pool].ckpt_active.take() {
            // The checkpoint sleep loop exits on its next fire.
            flag.set(false);
        }
        // "Once all logical functions have been completed, all resources
        // are automatically stopped" — unless reuse is configured and
        // more work may come.
        if !self.pools[pool].cfg.reuse_instances && self.pools[pool].queue.is_empty() {
            self.shutdown_pool(pool);
        } else if self.pools[pool].queue.is_empty() {
            // Reuse with a keep-alive budget: open an idle window. If no
            // job arrives before it closes, the warm VMs are released
            // (they re-provision on the next job).
            if let Some(secs) = self.pools[pool].cfg.idle_timeout_secs {
                self.pools[pool].idle_epoch += 1;
                let epoch = self.pools[pool].idle_epoch;
                self.set_timer(
                    SimDuration::from_secs_f64(secs),
                    Route::PoolIdle { pool, epoch },
                );
            }
        }
        self.pool_try_start(pool);
    }

    /// The keep-alive window of an idle pool closed: release its warm
    /// VMs. Stale timers (a job started meanwhile, opening a newer
    /// window) are dropped by the epoch check; VMs still mid-provision
    /// push the teardown back by one more window so nothing leaks
    /// unterminated.
    pub(super) fn on_pool_idle(&mut self, pool: usize, epoch: u64) {
        let p = &self.pools[pool];
        if p.idle_epoch != epoch || p.active.is_some() || !p.queue.is_empty() {
            return;
        }
        if p.workers.is_empty() && p.master.is_none() {
            return; // nothing warm to release
        }
        let settled = |pv: &PoolVm| matches!(pv.phase, VmPhase::Ready | VmPhase::Dead);
        let all_settled =
            p.workers.iter().all(settled) && p.master.as_ref().is_none_or(settled);
        if !all_settled {
            if let Some(secs) = self.pools[pool].cfg.idle_timeout_secs {
                self.set_timer(
                    SimDuration::from_secs_f64(secs),
                    Route::PoolIdle { pool, epoch },
                );
            }
            return;
        }
        self.shutdown_pool(pool);
    }

    // ------------------------------------------------------------------
    // Route demultiplexers
    // ------------------------------------------------------------------
}
