//! Master fault tolerance: armed master kills, checkpointing,
//! checkpointed re-adoption, and the decentralized continuation-passing
//! protocol, plus registered recovery continuations.

use super::*;

/// A registered DAG continuation: when upstream tasks of `up_job` land
/// their completion counters in storage, downstream tasks of `down_job`
/// whose fan-in block is fully counted are released directly — no
/// master (and no driver) in the path.
#[derive(Debug, Clone, Copy)]
pub(super) struct Continuation {
    pub(super) up_job: usize,
    pub(super) down_job: usize,
    pub(super) fan_in: FanIn,
    pub(super) up_tasks: usize,
    pub(super) down_tasks: usize,
}

/// Decentralized-mode bookkeeping for one job.
#[derive(Debug)]
pub(super) struct DcJob {
    /// Tasks whose bundle PUT has been issued (bundles persist in
    /// storage, so a requeue after worker loss needs no re-upload).
    pub(super) uploaded: Vec<bool>,
    /// Tasks whose completion counter has landed in storage.
    pub(super) counters: Vec<bool>,
}

/// Storage key of a decentralized task's input bundle.
pub(super) fn dc_bundle_key(job: usize, task: usize) -> String {
    format!("jobs/{job}/bundles/{task:05}")
}

/// Storage key of a decentralized task's completion counter.
pub(super) fn dc_counter_key(job: usize, task: usize) -> String {
    format!("jobs/{job}/counters/{task:05}")
}

impl CloudEnv {
    /// Arms a forced chaos kill of `pool`'s master VM: once the routed
    /// event counter reaches `at_event`, the master (the single worker
    /// VM in consolidated mode) is torn down through
    /// [`World::kill_vm`], bypassing fault-injection suppression. If the
    /// master is not up yet at the index, the kill retries on every
    /// subsequent event until it lands; a kill still pending when the
    /// run drains simply never fires.
    pub fn arm_master_kill(&mut self, pool: usize, at_event: u64) {
        self.armed_kills.push((pool, at_event));
    }

    /// Armed chaos kills that have not fired yet.
    pub fn pending_master_kills(&self) -> usize {
        self.armed_kills.len()
    }

    /// Registers a decentralized continuation edge: completion counters
    /// of `up_job` release the fan-in-satisfied tasks of `down_job`
    /// directly from the environment (no master, no driver). Registered
    /// unconditionally by the pipelined DAG drivers; consulted only for
    /// jobs on [`RecoveryMode::Decentralized`] pools.
    pub(crate) fn register_continuation(
        &mut self,
        up_job: usize,
        down_job: usize,
        fan_in: FanIn,
        up_tasks: usize,
        down_tasks: usize,
    ) {
        self.continuations.push(Continuation {
            up_job,
            down_job,
            fan_in,
            up_tasks,
            down_tasks,
        });
    }

    /// Fires every armed kill whose event index has passed, retrying
    /// kills whose master VM is not up yet.
    pub(super) fn fire_armed_kills(&mut self) {
        if self.armed_kills.is_empty() {
            return;
        }
        let events = self.events_routed;
        let armed = std::mem::take(&mut self.armed_kills);
        for (pool, at) in armed {
            if events >= at && self.try_kill_master(pool) {
                continue;
            }
            self.armed_kills.push((pool, at));
        }
    }

    pub(super) fn try_kill_master(&mut self, pool: usize) -> bool {
        let Some(vm) = self
            .pools
            .get(pool)
            .and_then(|p| p.master_pv())
            .map(|m| m.vm)
        else {
            return false;
        };
        if !self.world.kill_vm(vm) {
            return false;
        }
        let now = self.world.now();
        self.world
            .tracer_mut()
            .instant(now, "chaos-master-kill", "recovery", "recovery");
        true
    }

    /// The pool's acting master VM (and with it the KV store and the
    /// job monitor) was lost mid-run. What happens next is the whole
    /// point of [`crate::recovery`].
    pub(super) fn on_master_lost(&mut self, pool: usize, mode: RecoveryMode) {
        let now = self.world.now();
        match mode {
            RecoveryMode::Protected => {
                // The paper's stance has no answer: queued bundles died
                // with the KV store and the monitor stops listing. The
                // run stalls, which `run_job` surfaces as an error.
                self.world.tracer_mut().instant(
                    now,
                    "master-lost-unprotected",
                    "recovery",
                    "recovery",
                );
            }
            RecoveryMode::Checkpointed => {
                self.recovery_stats.masters_replaced += 1;
                self.pools[pool].recovering = true;
                self.pools[pool].recovery_episode += 1;
                let episode = self.pools[pool].recovery_episode;
                // The replacement master provisions through the normal
                // slot budget below; once its SSH setup completes,
                // `on_pool_vm_ready` opens this gate and the future
                // queues the checkpoint fetch.
                let gate = self.kernel.gate();
                self.pools[pool].readopt_gate = Some(gate.clone());
                let cmds = Rc::clone(&self.env_cmds);
                self.kernel.spawn(async move {
                    gate.wait().await;
                    cmds.borrow_mut()
                        .push_back(EnvCmd::Readopt { pool, episode });
                });
                self.world
                    .tracer_mut()
                    .instant(now, "master-lost", "recovery", "recovery");
            }
            RecoveryMode::Decentralized => {
                // Nothing to do: dispatch and continuations live in
                // object storage, and the client collects results.
                self.world.tracer_mut().instant(
                    now,
                    "master-lost-nonevent",
                    "recovery",
                    "recovery",
                );
            }
        }
    }

    /// Starts the periodic checkpoint loop as a kernel future. The loop
    /// snapshots once immediately — a replay baseline exists as soon as
    /// the job does, even for jobs shorter than the interval — then
    /// queues an [`EnvCmd::Checkpoint`] every interval until its
    /// liveness flag is cleared by `pool_job_finished`.
    pub(super) fn start_checkpoint_loop(&mut self, pool: usize) {
        if self.pools[pool]
            .ckpt_active
            .as_ref()
            .is_some_and(|f| f.get())
        {
            return; // a loop from the previous job (reuse) is still live
        }
        let flag = Rc::new(Cell::new(true));
        self.pools[pool].ckpt_active = Some(Rc::clone(&flag));
        let interval = SimDuration::from_secs_f64(
            self.pools[pool].cfg.checkpoint_interval_secs.max(0.05),
        );
        let exec = self.kernel.clone();
        let cmds = Rc::clone(&self.env_cmds);
        self.kernel.spawn(async move {
            cmds.borrow_mut().push_back(EnvCmd::Checkpoint { pool });
            loop {
                exec.sleep(interval).await;
                if !flag.get() {
                    break;
                }
                cmds.borrow_mut().push_back(EnvCmd::Checkpoint { pool });
            }
        });
    }

    /// Snapshots the master's orchestration state to object storage.
    /// Skipped while the master is down or mid-replacement; the PUT pays
    /// state-proportional I/O and bills to the active job.
    pub(super) fn write_checkpoint(&mut self, pool: usize) {
        if self.pools[pool].cfg.recovery != RecoveryMode::Checkpointed
            || self.pools[pool].recovering
        {
            return;
        }
        let Some(job) = self.pools[pool].active else {
            return;
        };
        if self.jobs[job].is_finished() {
            return;
        }
        let Some(master) = self.pools[pool].master_pv() else {
            return;
        };
        if master.phase != VmPhase::Ready {
            return;
        }
        let host = master.host;
        if !self.world.host_alive(host) {
            return;
        }
        self.pools[pool].ckpt_seq += 1;
        let tasks = &self.jobs[job].tasks;
        let snapshot = MasterCheckpoint {
            seq: self.pools[pool].ckpt_seq,
            worker_epochs: self.pools[pool].workers.iter().map(|w| w.epoch).collect(),
            jobs: vec![JobCheckpoint {
                job: job as u64,
                released: tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| !t.held)
                    .map(|(i, _)| i as u64)
                    .collect(),
                acked: tasks
                    .iter()
                    .enumerate()
                    .filter(|(_, t)| matches!(t.phase, TaskPhase::Done))
                    .map(|(i, _)| i as u64)
                    .collect(),
            }],
        };
        let bytes = snapshot.encode();
        self.recovery_stats.checkpoint_bytes += bytes.len() as u64;
        let now = self.world.now();
        self.world
            .tracer_mut()
            .instant(now, "checkpoint", "recovery", "recovery");
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key: checkpoint_key(pool),
                body: ObjectBody::real(bytes),
            },
            1,
            Route::Checkpoint { pool, job },
        );
    }

    /// The replacement master finished SSH setup: fetch the checkpoint
    /// so the replay can re-adopt workers and re-dispatch work.
    pub(super) fn begin_readopt(&mut self, pool: usize, episode: u64) {
        if self.pools[pool].recovery_episode != episode || !self.pools[pool].recovering {
            return; // a newer master loss superseded this recovery
        }
        let active = self.pools[pool].active;
        let finished = active.is_some_and(|j| self.jobs[j].is_finished());
        let Some(job) = active.filter(|_| !finished) else {
            // Nothing to recover: the pool simply has a fresh master.
            self.pools[pool].recovering = false;
            self.pools[pool].readopt_gate = None;
            return;
        };
        let Some(master) = self.pools[pool].master_pv() else {
            return;
        };
        if master.phase != VmPhase::Ready || !self.world.host_alive(master.host) {
            return; // replacement died too; the next one re-opens the gate
        }
        let host = master.host;
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Get {
                host,
                bucket,
                key: checkpoint_key(pool),
            },
            1,
            Route::Readopt { pool, job, episode },
        );
    }

    /// Checkpoint fetched: replay it. Live workers re-register by epoch
    /// handshake, the monitor restarts on the new master, and every
    /// unacknowledged, unowned task is re-dispatched. Tasks still
    /// running on surviving workers keep running — their results land in
    /// object storage either way, which is what bounds the billing delta
    /// to re-executed work.
    pub(super) fn on_readopt(&mut self, pool: usize, job: usize, episode: u64, outcome: OpOutcome) {
        if self.pools[pool].recovery_episode != episode || !self.pools[pool].recovering {
            return;
        }
        // A missing object (master died before the first snapshot) or a
        // torn write decodes to `None`: the replay falls back to "adopt
        // everything, re-dispatch everything unowned" — the snapshot
        // only ever narrows work, the result LIST is the ground truth.
        let snapshot = match &outcome {
            OpOutcome::GetOk { body } => {
                body.bytes().and_then(|b| MasterCheckpoint::decode(b).ok())
            }
            _ => None,
        };
        self.pools[pool].recovering = false;
        self.pools[pool].readopt_gate = None;
        if let Some(s) = &snapshot {
            self.pools[pool].ckpt_seq = self.pools[pool].ckpt_seq.max(s.seq);
        }
        // Epoch handshake: every live worker re-registers with the
        // replacement master.
        let readopted = self.pools[pool]
            .workers
            .iter()
            .filter(|w| w.phase == VmPhase::Ready && self.world.host_alive(w.host))
            .count() as u64;
        self.recovery_stats.workers_readopted += readopted;
        if self.pools[pool].active != Some(job) || self.jobs[job].is_finished() {
            return;
        }
        // The monitor moves to the new master and restarts as a fresh
        // loop future; the generation bump cancels the old one, so the
        // LIST cycle never forks.
        self.jobs[job].monitor_host = self.pools[pool].master_host();
        if self.jobs[job].monitor_started {
            self.start_monitor(job);
        }
        // Re-dispatch released tasks that nothing owns: not done, not
        // running on a surviving worker, not already backed off for a
        // retry. The old KV queue died with the old master, so queued
        // bundles are re-pushed from the replayed release frontier.
        let retry_pending: std::collections::HashSet<usize> = self
            .pending_task_retries
            .keys()
            .filter(|(j, _)| *j == job)
            .map(|(_, task)| *task)
            .collect();
        let redispatch: Vec<usize> = self.jobs[job]
            .tasks
            .iter()
            .enumerate()
            .filter(|(i, t)| {
                !t.held
                    && t.worker.is_none()
                    && !retry_pending.contains(i)
                    && !matches!(t.phase, TaskPhase::Done | TaskPhase::Failed(_))
            })
            .map(|(i, _)| i)
            .collect();
        let now = self.world.now();
        self.world
            .tracer_mut()
            .instant(now, "master-readopted", "recovery", "recovery");
        for task in redispatch {
            self.recovery_stats.tasks_redispatched += 1;
            self.requeue_task(pool, job, task);
        }
    }

    // ------------------------------------------------------------------
    // Decentralized continuation passing (RecoveryMode::Decentralized)
    // ------------------------------------------------------------------

    /// Decentralized job start: the client uploads task bundles straight
    /// to object storage and collects results itself. The master VM (if
    /// the pool even has a dedicated one) never touches the data path.
    pub(super) fn dc_start_job(&mut self, pool: usize, job: usize) {
        self.jobs[job].monitor_host = self.world.client_host();
        let n = self.jobs[job].inputs.len();
        self.dc_jobs.insert(
            job,
            DcJob {
                uploaded: vec![false; n],
                counters: vec![false; n],
            },
        );
        let ready: Vec<usize> = (0..n)
            .filter(|&t| !self.jobs[job].tasks[t].held)
            .collect();
        self.pools[pool].pushes_outstanding = ready.len();
        if ready.is_empty() {
            // Fully gated job: workers spin up idle and wait for
            // continuation-released bundles.
            self.pool_pushes_complete(pool, job);
            return;
        }
        for task in ready {
            self.dc_dispatch_task(pool, job, task);
        }
    }

    /// Makes a task claimable in decentralized mode: first dispatch
    /// uploads the bundle; a requeue (worker loss, retry) reuses the
    /// durable bundle already in storage.
    pub(super) fn dc_dispatch_task(&mut self, pool: usize, job: usize, task: usize) {
        if self.jobs[job].is_finished() || self.pools[pool].active != Some(job) {
            return;
        }
        let Some(dc) = self.dc_jobs.get_mut(&job) else {
            return;
        };
        let first = !dc.uploaded[task];
        dc.uploaded[task] = true;
        if !first {
            self.pools[pool].dc_ready.push_back(task);
            self.on_requeue_done(pool);
            return;
        }
        let bundle = Payload::List(vec![
            Payload::U64(task as u64),
            self.jobs[job].inputs[task].clone(),
        ]);
        let host = self.world.client_host();
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key: dc_bundle_key(job, task),
                body: ObjectBody::real(bundle.encode()),
            },
            1,
            Route::DcBundle { pool, job, task },
        );
    }

    /// A bundle PUT landed: the task is claimable. During the initial
    /// upload wave this also advances the pushes-outstanding gate that
    /// starts the worker processes.
    pub(super) fn on_dc_bundle(&mut self, pool: usize, job: usize, task: usize) {
        if self.jobs[job].is_finished() || self.pools[pool].active != Some(job) {
            return;
        }
        self.pools[pool].dc_ready.push_back(task);
        if self.pools[pool].pushes_outstanding > 0 {
            self.on_push_done(pool, job);
        } else {
            self.on_requeue_done(pool);
        }
    }

    /// A worker process claims the next ready task from storage (the
    /// conditional-put claim of a real implementation) and fetches its
    /// bundle. An empty ready list idles the process.
    pub(super) fn worker_claim(&mut self, pool: usize, job: usize, vm_idx: usize, proc: usize) {
        let Some(w) = self.pools[pool].workers.get(vm_idx) else {
            return;
        };
        if w.phase != VmPhase::Ready {
            return;
        }
        let host = w.host;
        let epoch = w.epoch;
        if !self.world.host_alive(host) {
            return; // VM just died; its VmFailed notification is queued
        }
        let task = loop {
            let Some(t) = self.pools[pool].dc_ready.pop_front() else {
                self.pools[pool].idle_procs.push((vm_idx, proc));
                return;
            };
            let ts = &self.jobs[job].tasks[t];
            if matches!(ts.phase, TaskPhase::Queued) && ts.worker.is_none() && !ts.held {
                break t;
            }
            // Stale entry (task got owned or finished meanwhile): skip.
        };
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Get {
                host,
                bucket,
                key: dc_bundle_key(job, task),
            },
            1,
            Route::DcClaim {
                pool,
                job,
                vm_idx,
                proc,
                epoch,
                task,
            },
        );
    }

    /// A claimed bundle arrived: run the task on the claiming process —
    /// unless the claimer died in flight (the task goes back to the
    /// ready list) or the task got owned meanwhile (the process claims
    /// something else).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn on_dc_claim(
        &mut self,
        pool: usize,
        job: usize,
        vm_idx: usize,
        proc: usize,
        epoch: u64,
        task: usize,
        outcome: OpOutcome,
    ) {
        if self.pools[pool].active != Some(job) || self.jobs[job].is_finished() {
            return;
        }
        let stale = match self.pools[pool].workers.get(vm_idx) {
            Some(w) => w.epoch != epoch || !self.world.host_alive(w.host),
            None => true,
        };
        if stale {
            // The bundle is durable in storage: hand the claim back.
            self.pools[pool].dc_ready.push_back(task);
            self.on_requeue_done(pool);
            return;
        }
        let ts = &self.jobs[job].tasks[task];
        if !(matches!(ts.phase, TaskPhase::Queued) && ts.worker.is_none() && !ts.held) {
            self.worker_pop(pool, vm_idx, proc);
            return;
        }
        let OpOutcome::GetOk { body } = outcome else {
            // Claims are queued only after the bundle PUT acks, so a
            // miss means an injected fault path; just claim again.
            self.worker_pop(pool, vm_idx, proc);
            return;
        };
        let bytes = body.bytes().expect("task bundles are always real bytes");
        let bundle = Payload::decode(bytes).expect("task bundle decodes");
        let items = bundle.as_list().expect("bundle is a list");
        let input = items[1].clone();
        let host = self.pools[pool].workers[vm_idx].host;
        let fleet = self.pools[pool].fleet_name.clone();
        let span = self.begin_attempt_span(job, task, &fleet);
        let now = self.world.now();
        let t = &mut self.jobs[job].tasks[task];
        t.worker = Some((vm_idx, proc));
        t.attempts += 1;
        t.started_at = Some(now);
        t.span = span;
        // No KV handle: decentralized tasks have no master to exchange
        // through (stage tasks only touch object storage).
        self.start_task(job, task, host, None, &input);
    }

    /// A finishing decentralized task writes its completion counter to
    /// object storage before its process claims new work.
    pub(super) fn dc_write_counter(&mut self, pool: usize, job: usize, task: usize, vm_idx: usize) {
        let Some(w) = self.pools[pool].workers.get(vm_idx) else {
            return;
        };
        let host = w.host;
        if !self.world.host_alive(host) {
            return;
        }
        let bucket = self.jobs[job].bucket.clone();
        self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key: dc_counter_key(job, task),
                body: ObjectBody::real(Payload::U64(task as u64).encode()),
            },
            1,
            Route::DcCounter { pool, job, task },
        );
    }

    /// A completion counter landed: continuation passing. The finishing
    /// task consults the registered DAG fan-in metadata and releases
    /// every downstream task whose upstream counter block is complete —
    /// directly from storage state, no master involved.
    pub(super) fn on_dc_counter(&mut self, _pool: usize, job: usize, task: usize) {
        self.recovery_stats.counters_written += 1;
        let n = self.jobs[job].tasks.len();
        let dc = self.dc_jobs.entry(job).or_insert_with(|| DcJob {
            uploaded: vec![false; n],
            counters: vec![false; n],
        });
        dc.counters[task] = true;
        let counters = dc.counters.clone();
        let conts: Vec<Continuation> = self
            .continuations
            .iter()
            .filter(|c| c.up_job == job)
            .copied()
            .collect();
        for c in conts {
            if self.jobs[c.down_job].is_finished() {
                continue;
            }
            let fire: Vec<usize> = (0..c.down_tasks)
                .filter(|&t| {
                    self.jobs[c.down_job].tasks[t].held && {
                        let range = fan_in_range(c.fan_in, c.up_tasks, c.down_tasks, t);
                        range.contains(&task) && range.clone().all(|u| counters[u])
                    }
                })
                .collect();
            for t in fire {
                self.recovery_stats.continuations_fired += 1;
                self.release_task(c.down_job, t);
            }
        }
    }
}
