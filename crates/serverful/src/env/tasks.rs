//! Task execution on both backends: FaaS dispatch, sandbox and
//! worker task startup, the action/step engine driving [`TaskLogic`],
//! and task completion/failure.

use super::*;

impl CloudEnv {
    pub(super) fn dispatch_faas(&mut self, job: usize, memory_mb: u32, fetch_input: bool, fleet: &str) {
        let n = self.jobs[job].inputs.len();
        for task in 0..n {
            if self.jobs[job].tasks[task].held {
                continue; // gated; dispatched on release
            }
            self.dispatch_faas_task(job, task, memory_mb, fetch_input, fleet);
        }
    }

    /// Dispatches (or re-dispatches) one FaaS task. Re-uploading the
    /// input bundle on retries is idempotent and covers the case where
    /// the original upload itself was lost.
    pub(super) fn dispatch_faas_task(
        &mut self,
        job: usize,
        task: usize,
        memory_mb: u32,
        fetch_input: bool,
        fleet: &str,
    ) {
        if fetch_input {
            // Upload the input bundle first; invoke on completion so
            // the sandbox never races its own input.
            let key = self.jobs[job].input_key(task);
            let body = ObjectBody::real(self.jobs[job].inputs[task].encode());
            let client = self.world.client_host();
            let bucket = self.jobs[job].bucket.clone();
            self.issue_storage(
                StorageSpec::Put {
                    host: client,
                    bucket,
                    key,
                    body,
                },
                1,
                Route::InputPut { job, task },
            );
        } else {
            self.invoke_task(job, task, memory_mb, fleet);
        }
    }

    pub(super) fn invoke_task(&mut self, job: usize, task: usize, memory_mb: u32, fleet: &str) {
        let span = self.begin_attempt_span(job, task, fleet);
        // The sandbox captures the label at invoke time and bills its
        // whole execution to this job, however late it retires.
        let label = self.jobs[job].name.clone();
        self.world.set_bill_label(label);
        self.world.set_trace_parent(span);
        let sandbox = self.world.faas_invoke(memory_mb, fleet);
        self.world.set_trace_parent(SpanId::NONE);
        let now = self.world.now();
        let t = &mut self.jobs[job].tasks[task];
        t.sandbox = Some(sandbox);
        t.phase = TaskPhase::Starting;
        t.attempts += 1;
        t.started_at = Some(now);
        t.span = span;
        self.sandbox_routes
            .insert(sandbox, Route::Task { job, task });
    }

    pub(super) fn on_sandbox_up(&mut self, route: Route, sandbox: SandboxId) {
        let Route::Task { job, task } = route else {
            unreachable!("sandbox route is always a task")
        };
        if self.jobs[job].is_finished() {
            // Job failed while this sandbox was starting; bill and drop.
            self.sandbox_routes.remove(&sandbox);
            self.world.faas_release(sandbox);
            return;
        }
        let host = self.world.sandbox_host(sandbox);
        let fetch = matches!(
            self.jobs[job].backend,
            JobBackend::Faas { fetch_input: true, .. }
        );
        if fetch {
            self.jobs[job].tasks[task].phase = TaskPhase::FetchingInput;
            let bucket = self.jobs[job].bucket.clone();
            let key = self.jobs[job].input_key(task);
            let op = self.issue_storage(
                StorageSpec::Get { host, bucket, key },
                1,
                Route::Task { job, task },
            );
            // Remember the host for when the input arrives; track the
            // GET so an attempt teardown cleans its route up.
            let mut run = TaskRun::new(
                // Placeholder logic; replaced at start. Using the factory
                // here would double-construct.
                crate::task::ScriptTask::new().boxed(),
                host,
                None,
            );
            run.pending.insert(op, 0);
            self.jobs[job].tasks[task].run = Some(run);
        } else {
            let input = self.jobs[job].inputs[task].clone();
            self.start_task(job, task, host, None, &input);
        }
    }

    pub(super) fn start_task(
        &mut self,
        job: usize,
        task: usize,
        host: HostId,
        kv: Option<KvId>,
        input: &Payload,
    ) {
        let logic = (self.jobs[job].factory)(input);
        let mut run = TaskRun::new(logic, host, kv);
        self.jobs[job].tasks[task].phase = TaskPhase::Running;
        let step = run.logic.on_start(input);
        self.apply_step(job, task, run, step);
    }

    /// Applies a task step: issues the action's ops or finishes the task.
    pub(super) fn apply_step(&mut self, job: usize, task: usize, mut run: TaskRun, step: TaskStep) {
        match step {
            TaskStep::Act(action) => {
                match self.issue_action(job, task, &mut run, action) {
                    Ok(()) => self.jobs[job].tasks[task].run = Some(run),
                    Err(err) => self.fail_task(job, task, run, err.to_string()),
                }
            }
            TaskStep::Finish(payload) => {
                self.jobs[job].tasks[task].run = Some(run);
                self.finish_task(job, task, payload);
            }
            TaskStep::Fail(msg) => self.fail_task(job, task, run, msg),
        }
    }

    pub(super) fn issue_action(
        &mut self,
        job: usize,
        task: usize,
        run: &mut TaskRun,
        action: Action,
    ) -> Result<(), ExecError> {
        let host = run.host;
        run.shape = PendingShape::Single;
        let route = Route::Task { job, task };
        // Data-path actions burn partial CPU for (de)serialisation while
        // the transfer is in flight (accounting only).
        let overlapped = !matches!(action, Action::Compute { .. } | Action::Sleep { .. });
        if overlapped {
            let frac = self.jobs[job].io_overlap;
            if frac > 0.0 {
                self.world.task_io_busy(host, frac);
                run.io_busy = frac;
            }
        }
        match action {
            Action::Compute { cpu_secs } => {
                let op = self.world.compute(host, cpu_secs);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Sleep { secs } => {
                let op = self.world.sleep(SimDuration::from_secs_f64(secs));
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::Get { bucket, key } => {
                let op = self.issue_storage(
                    StorageSpec::Get { host, bucket, key },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::Put { bucket, key, body } => {
                let op = self.issue_storage(
                    StorageSpec::Put {
                        host,
                        bucket,
                        key,
                        body,
                    },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::Delete { bucket, key } => {
                let op = self.issue_storage(
                    StorageSpec::Delete { host, bucket, key },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::List { bucket, prefix } => {
                let op = self.issue_storage(
                    StorageSpec::List {
                        host,
                        bucket,
                        prefix,
                    },
                    1,
                    route,
                );
                run.pending.insert(op, 0);
            }
            Action::GetMany { bucket, keys } => {
                assert!(!keys.is_empty(), "GetMany with no keys");
                run.shape = PendingShape::Multi {
                    results: vec![None; keys.len()],
                    puts: false,
                };
                for (i, key) in keys.into_iter().enumerate() {
                    let op = self.issue_storage(
                        StorageSpec::Get {
                            host,
                            bucket: bucket.clone(),
                            key,
                        },
                        1,
                        route.clone(),
                    );
                    run.pending.insert(op, i);
                }
            }
            Action::PutMany { bucket, entries } => {
                assert!(!entries.is_empty(), "PutMany with no entries");
                run.shape = PendingShape::Multi {
                    results: vec![None; entries.len()],
                    puts: true,
                };
                for (i, (key, body)) in entries.into_iter().enumerate() {
                    let op = self.issue_storage(
                        StorageSpec::Put {
                            host,
                            bucket: bucket.clone(),
                            key,
                            body,
                        },
                        1,
                        route.clone(),
                    );
                    run.pending.insert(op, i);
                }
            }
            Action::KvGet { key } => {
                let kv = run.kv.ok_or_else(|| {
                    ExecError::Unsupported("KV access outside the serverful backend".into())
                })?;
                self.world.set_trace_parent(self.task_span(job, task));
                let op = self.world.kv_get(host, kv, &key);
                self.world.set_trace_parent(SpanId::NONE);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
            Action::KvPut { key, body } => {
                let kv = run.kv.ok_or_else(|| {
                    ExecError::Unsupported("KV access outside the serverful backend".into())
                })?;
                self.world.set_trace_parent(self.task_span(job, task));
                let op = self.world.kv_put(host, kv, &key, body);
                self.world.set_trace_parent(SpanId::NONE);
                run.pending.insert(op, 0);
                self.op_routes.insert(op, route);
            }
        }
        Ok(())
    }

    /// An op belonging to a task (either its logic or its result write)
    /// completed.
    pub(super) fn on_task_op(&mut self, job: usize, task: usize, op: OpId, outcome: OpOutcome) {
        if self.jobs[job].is_finished() {
            return;
        }
        // The task's host may have died at this very timestamp with its
        // failure notification still queued behind this op: issuing the
        // next action would hit a dead host. Drop the completion — the
        // pending SandboxFailed/VmFailed tears the attempt down.
        if let Some(run) = &self.jobs[job].tasks[task].run {
            if !self.world.host_alive(run.host) {
                return;
            }
        }
        match &self.jobs[job].tasks[task].phase {
            TaskPhase::FetchingInput => {
                let body = match outcome {
                    OpOutcome::GetOk { body } => body,
                    OpOutcome::GetMissing => {
                        let run = self.jobs[job].tasks[task].run.take().unwrap();
                        self.fail_task(job, task, run, "input bundle missing".into());
                        return;
                    }
                    other => unreachable!("input fetch yielded {other:?}"),
                };
                let run = self.jobs[job].tasks[task].run.take().unwrap();
                let host = run.host;
                let input = match body.bytes() {
                    Some(bytes) => match Payload::decode(bytes) {
                        Ok(p) => p,
                        Err(e) => {
                            let run2 = TaskRun::new(crate::task::ScriptTask::new().boxed(), host, None);
                            self.fail_task(job, task, run2, e.to_string());
                            return;
                        }
                    },
                    None => {
                        // Opaque input bundle: fall back to the in-memory
                        // input (used by paper-scale profile runs).
                        self.jobs[job].inputs[task].clone()
                    }
                };
                drop(run);
                self.start_task(job, task, host, None, &input);
            }
            TaskPhase::Running => {
                let mut run = self.jobs[job].tasks[task].run.take().unwrap();
                // The action is completing (or progressing); once the
                // last op lands, the overlapped-I/O accounting ends.
                let body = match outcome {
                    OpOutcome::GetOk { body } => Some(body),
                    OpOutcome::GetMissing => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::MissingObject);
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    OpOutcome::ListOk { keys } => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::Keys(keys));
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    OpOutcome::KvValue { body } => {
                        run.pending.remove(&op);
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(ActionOutcome::KvValue(body));
                        self.apply_step(job, task, run, step);
                        return;
                    }
                    _ => None,
                };
                match run.complete_op(op, body) {
                    Some(assembled) => {
                        self.end_io_busy(&mut run);
                        let step = run.logic.on_action(assembled);
                        self.apply_step(job, task, run, step);
                    }
                    None => {
                        // More ops of a multi-action outstanding.
                        self.jobs[job].tasks[task].run = Some(run);
                    }
                }
            }
            TaskPhase::WritingResult => {
                debug_assert!(matches!(outcome, OpOutcome::PutOk));
                self.task_done(job, task);
            }
            other => unreachable!("op completed in phase {other:?}"),
        }
    }

    /// Task logic finished: write the encoded result to object storage.
    pub(super) fn finish_task(&mut self, job: usize, task: usize, payload: Payload) {
        let host = self.jobs[job].tasks[task].run.as_ref().unwrap().host;
        self.jobs[job].tasks[task].phase = TaskPhase::WritingResult;
        self.jobs[job].results[task] = None; // filled by the monitor
        let bucket = self.jobs[job].bucket.clone();
        let key = self.jobs[job].result_key(task);
        let body = ObjectBody::real(payload.encode());
        let op = self.issue_storage(
            StorageSpec::Put {
                host,
                bucket,
                key,
                body,
            },
            1,
            Route::Task { job, task },
        );
        // Track the write in the pending map so an attempt teardown
        // (worker loss, straggler) cleans its route up too.
        if let Some(run) = self.jobs[job].tasks[task].run.as_mut() {
            run.pending.insert(op, 0);
        }
    }

    /// Result written: retire the task's host slot.
    pub(super) fn task_done(&mut self, job: usize, task: usize) {
        let now = self.world.now();
        let span = std::mem::replace(&mut self.jobs[job].tasks[task].span, SpanId::NONE);
        self.world.tracer_mut().end(span, now);
        self.jobs[job].tasks[task].phase = TaskPhase::Done;
        self.jobs[job].done_tasks += 1;
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox {
            self.sandbox_routes.remove(&sandbox);
            self.world.faas_release(sandbox);
        }
        if let Some((vm_idx, proc)) = self.jobs[job].tasks[task].worker {
            if let JobBackend::Standalone { pool } = self.jobs[job].backend {
                // Decentralized continuation passing: the completion
                // counter goes to storage before the process moves on.
                if self.pools[pool].cfg.recovery == RecoveryMode::Decentralized {
                    self.dc_write_counter(pool, job, task, vm_idx);
                }
                // The worker process fetches its next logical function.
                self.worker_pop(pool, vm_idx, proc);
            }
        }
    }

    /// Ends the overlapped-I/O busy accounting of a task's action.
    pub(super) fn end_io_busy(&mut self, run: &mut TaskRun) {
        if run.io_busy > 0.0 {
            self.world.task_io_busy(run.host, -run.io_busy);
            run.io_busy = 0.0;
        }
    }

    pub(super) fn fail_task(&mut self, job: usize, task: usize, mut run: TaskRun, msg: String) {
        self.end_io_busy(&mut run);
        drop(run);
        let now = self.world.now();
        let span = std::mem::replace(&mut self.jobs[job].tasks[task].span, SpanId::NONE);
        let tracer = self.world.tracer_mut();
        tracer.attr_str(span, "failed", &msg);
        tracer.end(span, now);
        self.jobs[job].tasks[task].phase = TaskPhase::Failed(msg.clone());
        if let Some(sandbox) = self.jobs[job].tasks[task].sandbox {
            self.sandbox_routes.remove(&sandbox);
            self.world.faas_release(sandbox);
        }
        let err = ExecError::TaskFailed(format!("task {task}: {msg}"));
        self.complete_job(job, Some(err));
    }

    // ------------------------------------------------------------------
    // Completion monitor (shared: client for FaaS, master for VMs)
    // ------------------------------------------------------------------
}
