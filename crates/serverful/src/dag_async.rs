//! The DAG scheduler as straight-line `await` code on the
//! deterministic async kernel ([`simkernel::aio`]).
//!
//! [`run_dag_async`] is the workspace's one DAG driver (it replaced a
//! hand-rolled pump/poll loop that was kept as an equivalence oracle
//! until the async default had shipped): the scheduling logic lives in
//! futures instead of pump loops:
//!
//! * **Barrier mode** is one driver task: launch a node, `await` its
//!   completion, move to the next — the callback-free shape of the
//!   classic BSP chain.
//! * **Pipelined mode** spawns one task per DAG node; each awaits the
//!   reactor's observe/release epochs and handles only its own job.
//!
//! A small reactor bridges futures onto [`CloudEnv`]: after each
//! `pump()` it advances the executor clock to the host clock and fires
//! the epoch notifiers; tasks then run in ascending spawn order — the
//! kernel's `(SimTime, spawn_seq)` wakeup rule. Because node tasks are
//! spawned in topological order and every dependency edge points at an
//! earlier node, each epoch runs a deterministic observe-then-release
//! scan: same env call sequence, same span-id allocation order,
//! byte-identical tables, traces and billing across repeat runs
//! (asserted by `tests/equivalence.rs` across scenarios and modes).

use std::cell::{Cell, RefCell};
use std::rc::Rc;

use simkernel::{AsyncExecutor, Notifier, SimTime};
use telemetry::trace::SpanId;

use crate::dag::{
    fan_in_range, maybe_begin_group_span, maybe_end_group_span, Dag, DagStats, Edge,
    ExecutionMode, NodeStats,
};
use crate::env::{CloudEnv, EnvEvent};
use crate::error::ExecError;
use crate::executor::JobHandle;

/// Executes the graph. Consumes the DAG (launch closures are `FnMut`
/// run once each) and takes ownership of the environment and driver
/// context (futures need `'static` captures), handing them back
/// alongside the result.
///
/// In [`ExecutionMode::Barrier`] nodes run strictly one after another —
/// the degenerate DAG — reproducing the classic stage-chained executor
/// byte-for-byte (identical storage/compute call sequence, so golden
/// traces are unchanged). In [`ExecutionMode::Pipelined`] all nodes
/// submit up front gated and tasks are released as their dependencies
/// complete.
///
/// When tracing is enabled, each group opens a `stage` span covering
/// its nodes; in pipelined mode each job span additionally carries a
/// `deps` attribute naming its upstream nodes (spans parented on DAG
/// edges).
///
/// # Errors
///
/// The returned result propagates the first node failure or a drained
/// (stalled) world.
pub fn run_dag_async<C: 'static>(
    env: CloudEnv,
    ctx: C,
    dag: Dag<C>,
    mode: ExecutionMode,
) -> (CloudEnv, C, Result<DagStats, ExecError>) {
    match mode {
        ExecutionMode::Barrier => run_barrier_async(env, ctx, dag),
        ExecutionMode::Pipelined => run_pipelined_async(env, ctx, dag),
    }
}

/// Recovers the sole owner of a shared cell once every task holding a
/// clone was dropped.
fn unwrap_shared<T>(rc: Rc<RefCell<T>>, what: &str) -> T {
    match Rc::try_unwrap(rc) {
        Ok(cell) => cell.into_inner(),
        Err(_) => panic!("async DAG reactor leaked a reference to {what}"),
    }
}

fn run_barrier_async<C: 'static>(
    env: CloudEnv,
    ctx: C,
    mut dag: Dag<C>,
) -> (CloudEnv, C, Result<DagStats, ExecError>) {
    let env = Rc::new(RefCell::new(env));
    let ctx = Rc::new(RefCell::new(ctx));
    let exec = AsyncExecutor::new();
    let epoch = exec.notifier();
    let drained = Rc::new(Cell::new(false));

    let driver = {
        let env = env.clone();
        let ctx = ctx.clone();
        let epoch = epoch.clone();
        let drained = drained.clone();
        exec.spawn(async move {
            let mut open = vec![SpanId::NONE; dag.groups.len()];
            let mut stats = Vec::with_capacity(dag.len());
            for v in 0..dag.len() {
                let (launched_at, handle, tasks) = {
                    let mut env = env.borrow_mut();
                    maybe_begin_group_span(&mut env, &dag, v, &mut open);
                    if let Some(g) = dag.node(v).group {
                        env.set_job_parent(open[g]);
                    }
                    let launched_at = env.now();
                    let handle =
                        (dag.node_mut(v).launch)(&mut ctx.borrow_mut(), &mut env, false)?;
                    let tasks = handle.total_tasks(&env);
                    (launched_at, handle, tasks)
                };
                // The barrier: await the node draining completely.
                let result = loop {
                    if let Some(r) = env.borrow_mut().try_job_result(handle.id) {
                        break r;
                    }
                    epoch.notified().await;
                    if drained.get() {
                        break Err(ExecError::Stalled(format!(
                            "simulation drained with DAG node {} ({}) unfinished",
                            v,
                            dag.node(v).label
                        )));
                    }
                };
                {
                    let mut env = env.borrow_mut();
                    env.set_job_parent(SpanId::NONE);
                    maybe_end_group_span(&mut env, &dag, v, &mut open);
                }
                result?;
                let finished_at = env.borrow().now();
                stats.push(NodeStats {
                    label: dag.node(v).label.clone(),
                    group: dag.node(v).group,
                    tasks,
                    launched_at,
                    finished_at,
                    released_at: vec![launched_at; tasks],
                    done_at: vec![finished_at; tasks],
                });
            }
            Ok(DagStats { nodes: stats })
        })
    };

    exec.run_ready();
    while !driver.is_done() {
        let ev = env.borrow_mut().pump();
        if matches!(ev, EnvEvent::Drained) {
            drained.set(true);
        }
        exec.advance_to(env.borrow().now());
        epoch.notify_all();
        exec.run_ready();
    }
    let result = driver.try_take().expect("completed driver yields a result");
    drop(driver);
    drop(exec);
    drop(epoch);
    let env = unwrap_shared(env, "the environment");
    let ctx = unwrap_shared(ctx, "the driver context");
    (env, ctx, result)
}

/// Static per-node facts the node tasks need after the [`Dag`] (and its
/// launch closures) has been consumed by submission.
struct NodeMeta {
    tasks: usize,
    deps: Vec<Edge>,
    /// Group to close when this node finishes (set only on the group's
    /// last member, mirroring [`maybe_end_group_span`]).
    end_group: Option<usize>,
}

/// Mutable per-node scheduling state shared between the reactor and the
/// node tasks (the async twin of the legacy driver's `Live`).
struct LiveAsync {
    handle: JobHandle,
    stats: NodeStats,
    done: Vec<bool>,
    released: Vec<bool>,
    complete: bool,
}

/// Everything a pipelined node task needs, cheap to clone per task.
struct PipeShared {
    env: Rc<RefCell<CloudEnv>>,
    live: Rc<RefCell<Vec<LiveAsync>>>,
    meta: Rc<Vec<NodeMeta>>,
    open: Rc<RefCell<Vec<SpanId>>>,
    fatal: Rc<RefCell<Option<ExecError>>>,
    observe: Notifier,
    release: Notifier,
}

impl Clone for PipeShared {
    fn clone(&self) -> Self {
        PipeShared {
            env: self.env.clone(),
            live: self.live.clone(),
            meta: self.meta.clone(),
            open: self.open.clone(),
            fatal: self.fatal.clone(),
            observe: self.observe.clone(),
            release: self.release.clone(),
        }
    }
}

fn run_pipelined_async<C: 'static>(
    mut env: CloudEnv,
    mut ctx: C,
    mut dag: Dag<C>,
) -> (CloudEnv, C, Result<DagStats, ExecError>) {
    // Submission is inherently sequential straight-line code; run it
    // synchronously, replaying the legacy submission loop exactly.
    let mut open = vec![SpanId::NONE; dag.groups.len()];
    let mut live: Vec<LiveAsync> = Vec::with_capacity(dag.len());
    for v in 0..dag.len() {
        maybe_begin_group_span(&mut env, &dag, v, &mut open);
        if let Some(g) = dag.node(v).group {
            env.set_job_parent(open[g]);
        }
        let launched_at = env.now();
        let handle = match (dag.node_mut(v).launch)(&mut ctx, &mut env, true) {
            Ok(h) => h,
            Err(e) => return (env, ctx, Err(e)),
        };
        env.set_job_parent(SpanId::NONE);
        let tasks = handle.total_tasks(&env);
        debug_assert_eq!(
            tasks,
            dag.node(v).tasks,
            "node {} declared {} tasks but launched {}",
            dag.node(v).label,
            dag.node(v).tasks,
            tasks
        );
        if !dag.node(v).deps.is_empty() {
            let deps: Vec<&str> = dag
                .node(v)
                .deps
                .iter()
                .map(|e| dag.node(e.from).label.as_str())
                .collect();
            env.annotate_job_span(handle.id, "deps", &deps.join(","));
        }
        // Publish the fan-in metadata so decentralized pools can fire
        // continuations without the scheduler in the loop (no-op for
        // other recovery modes).
        for e in &dag.node(v).deps {
            env.register_continuation(
                live[e.from].handle.id,
                handle.id,
                e.fan_in,
                dag.node(e.from).tasks,
                dag.node(v).tasks,
            );
        }
        live.push(LiveAsync {
            handle,
            stats: NodeStats {
                label: dag.node(v).label.clone(),
                group: dag.node(v).group,
                tasks,
                launched_at,
                finished_at: launched_at,
                released_at: vec![SimTime::ZERO; tasks],
                done_at: vec![SimTime::ZERO; tasks],
            },
            done: vec![false; tasks],
            released: vec![false; tasks],
            complete: false,
        });
    }

    // Distil the graph facts the node tasks need, then let the DAG (and
    // its spent launch closures) go.
    let meta: Vec<NodeMeta> = (0..dag.len())
        .map(|v| {
            let group = dag.node(v).group;
            let end_group = group.filter(|g| {
                (0..dag.len()).rev().find(|w| dag.node(*w).group == Some(*g)) == Some(v)
            });
            NodeMeta {
                tasks: dag.node(v).tasks,
                deps: dag.node(v).deps.clone(),
                end_group,
            }
        })
        .collect();
    drop(dag);

    let exec = AsyncExecutor::new();
    let shared = PipeShared {
        env: Rc::new(RefCell::new(env)),
        live: Rc::new(RefCell::new(live)),
        meta: Rc::new(meta),
        open: Rc::new(RefCell::new(open)),
        fatal: Rc::new(RefCell::new(None)),
        observe: exec.notifier(),
        release: exec.notifier(),
    };

    // One task per node, spawned in topological order so the kernel's
    // spawn-sequence tie-break replays the legacy node-order scans.
    for v in 0..shared.meta.len() {
        let sh = shared.clone();
        exec.spawn(async move { node_task(sh, v).await });
    }

    let result = pipelined_reactor(&exec, &shared);

    drop(exec); // drops pending node tasks and their `shared` clones
    let PipeShared { env, live, fatal, open, meta, observe, release } = shared;
    drop((fatal, open, meta, observe, release));
    let env = unwrap_shared(env, "the environment");
    let ctx_back = ctx;
    let result = result.map(|()| DagStats {
        nodes: unwrap_shared(live, "the node stats")
            .into_iter()
            .map(|l| l.stats)
            .collect(),
    });
    (env, ctx_back, result)
}

/// The host bridge for pipelined mode: pump the world, then fire the
/// observe and release epochs — node tasks wake in spawn (= node)
/// order, reproducing the legacy observe-all-then-release-all scans.
fn pipelined_reactor(exec: &AsyncExecutor, shared: &PipeShared) -> Result<(), ExecError> {
    // First drain lets every node task register on the release epoch;
    // then the initial release pass runs before the first pump, exactly
    // like the legacy driver.
    exec.run_ready();
    shared.release.notify_all();
    exec.run_ready();
    loop {
        if let Some(e) = shared.fatal.borrow_mut().take() {
            return Err(e);
        }
        if shared.live.borrow().iter().all(|l| l.complete) {
            return Ok(());
        }
        match shared.env.borrow_mut().pump() {
            EnvEvent::Progress | EnvEvent::Timer(_) => {}
            EnvEvent::Drained => {
                let live = shared.live.borrow();
                let stuck: Vec<&str> = live
                    .iter()
                    .filter(|l| !l.complete)
                    .map(|l| l.stats.label.as_str())
                    .collect();
                return Err(ExecError::Stalled(format!(
                    "simulation drained with DAG nodes unfinished: {}",
                    stuck.join(", ")
                )));
            }
        }
        exec.advance_to(shared.env.borrow().now());
        shared.observe.notify_all();
        exec.run_ready();
        if let Some(e) = shared.fatal.borrow_mut().take() {
            // A node failure short-circuits before any release pass,
            // matching the legacy `observe_progress(..)?`.
            return Err(e);
        }
        shared.release.notify_all();
        exec.run_ready();
    }
}

/// The per-node future: initial release pass, then one observe/release
/// round per reactor epoch until the node's job completes.
async fn node_task(sh: PipeShared, v: usize) {
    sh.release.notified().await;
    release_own(&sh, v);
    loop {
        if sh.live.borrow()[v].complete {
            return;
        }
        sh.observe.notified().await;
        if sh.fatal.borrow().is_some() {
            // An earlier node failed this epoch: stop observing, like
            // the legacy scan aborting mid-pass.
            return;
        }
        if let Err(e) = observe_own(&sh, v) {
            *sh.fatal.borrow_mut() = Some(e);
            return;
        }
        if sh.live.borrow()[v].complete {
            return;
        }
        sh.release.notified().await;
        if sh.fatal.borrow().is_some() {
            return;
        }
        release_own(&sh, v);
    }
}

/// Stamps this node's newly-completed tasks; collects the job when it
/// finishes (ending the group span on the group's last member).
fn observe_own(sh: &PipeShared, v: usize) -> Result<(), ExecError> {
    let now = sh.env.borrow().now();
    let mut live = sh.live.borrow_mut();
    let l = &mut live[v];
    {
        let env = sh.env.borrow();
        if l.handle.done_tasks(&env) > l.done.iter().filter(|d| **d).count() {
            for t in 0..l.stats.tasks {
                if !l.done[t] && l.handle.task_done(&env, t) {
                    l.done[t] = true;
                    l.stats.done_at[t] = now;
                }
            }
        }
        if !l.handle.is_finished(&env) {
            return Ok(());
        }
    }
    let mut env = sh.env.borrow_mut();
    let result = env
        .try_job_result(l.handle.id)
        .expect("finished job yields a result");
    l.complete = true;
    l.stats.finished_at = now;
    if let Some(g) = sh.meta[v].end_group {
        let span = sh.open.borrow()[g];
        if span != SpanId::NONE {
            env.world_mut().tracer_mut().end(span, now);
            sh.open.borrow_mut()[g] = SpanId::NONE;
        }
    }
    result.map(|_| ())
}

/// Releases this node's gated tasks whose upstream partitions are done.
fn release_own(sh: &PipeShared, v: usize) {
    let now = sh.env.borrow().now();
    let mut live = sh.live.borrow_mut();
    if live[v].complete {
        return;
    }
    let meta = &sh.meta[v];
    for t in 0..meta.tasks {
        if live[v].released[t] {
            continue;
        }
        let ready = meta.deps.iter().all(|e| {
            fan_in_range(e.fan_in, sh.meta[e.from].tasks, meta.tasks, t)
                .all(|u| live[e.from].done[u])
        });
        if !ready {
            continue;
        }
        live[v].released[t] = true;
        live[v].stats.released_at[t] = now;
        let handle = live[v].handle;
        handle.release_task(&mut sh.env.borrow_mut(), t);
    }
}
