//! CloudObjects: Lithops' abstraction for sharing data between stages.
//!
//! A [`CloudObjectRef`] is a lightweight pointer to an object in cloud
//! storage. Stages running on *different backends* (cloud functions and
//! VMs) exchange data by passing refs; the data itself moves through the
//! object store. Carrying the object size in the ref is what lets the
//! serverful backend right-size VMs from the inputs alone, without
//! touching the data.

use std::fmt;

/// A reference to an object in cloud storage.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CloudObjectRef {
    /// The bucket holding the object.
    pub bucket: String,
    /// The object key.
    pub key: String,
    /// The object's size in bytes at creation time.
    pub size: u64,
}

impl CloudObjectRef {
    /// Creates a reference.
    pub fn new(bucket: impl Into<String>, key: impl Into<String>, size: u64) -> Self {
        CloudObjectRef {
            bucket: bucket.into(),
            key: key.into(),
            size,
        }
    }
}

impl fmt::Display for CloudObjectRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cos://{}/{} ({} B)", self.bucket, self.key, self.size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shows_location_and_size() {
        let r = CloudObjectRef::new("data", "sorted/part-0", 4096);
        assert_eq!(r.to_string(), "cos://data/sorted/part-0 (4096 B)");
    }

    #[test]
    fn equality_is_structural() {
        let a = CloudObjectRef::new("b", "k", 1);
        let b = CloudObjectRef::new("b", "k", 1);
        assert_eq!(a, b);
        assert_ne!(a, CloudObjectRef::new("b", "k", 2));
    }
}
