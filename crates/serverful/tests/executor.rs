//! End-to-end tests of the FunctionExecutor on both backends.

use std::sync::Arc;

use cloudsim::ObjectBody;
use serverful::executor::MapOptions;
use serverful::{
    Backend, CloudEnv, ExecMode, ExecutorConfig, FunctionExecutor, Payload, ScriptTask, Storage,
    TaskStep,
};
use telemetry::CostCategory;

fn double_factory() -> serverful::job::TaskFactory {
    Arc::new(|input: &Payload| {
        let x = input.as_u64().expect("u64 input");
        ScriptTask::new()
            .compute(1.0)
            .finish_value(Payload::U64(x * 2))
            .boxed()
    })
}

#[test]
fn faas_map_returns_results_in_input_order() {
    let mut env = CloudEnv::new_default(11);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let inputs: Vec<Payload> = (0..20).map(Payload::U64).collect();
    let job = exec.map(&mut env, double_factory(), inputs);
    let results = exec.get_result(&mut env, job).expect("job succeeds");
    let expected: Vec<Payload> = (0..20).map(|x| Payload::U64(x * 2)).collect();
    assert_eq!(results, expected);
}

#[test]
fn faas_map_bills_lambda_and_storage() {
    let mut env = CloudEnv::new_default(11);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let job = exec.map(&mut env, double_factory(), vec![Payload::U64(1)]);
    exec.get_result(&mut env, job).unwrap();
    let ledger = env.world().ledger();
    assert!(ledger.total_for(CostCategory::FaasCompute) > 0.0);
    assert!(ledger.total_for(CostCategory::FaasRequests) > 0.0);
    // Input upload, result write, monitor LIST/GET all hit storage.
    assert!(ledger.total_for(CostCategory::StorageRequests) > 0.0);
    assert_eq!(ledger.total_for(CostCategory::VmCompute), 0.0);
}

#[test]
fn faas_map_takes_realistic_wall_time() {
    let mut env = CloudEnv::new_default(11);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let inputs: Vec<Payload> = (0..100).map(Payload::U64).collect();
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .compute(5.0)
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, factory, inputs);
    exec.get_result(&mut env, job).unwrap();
    let secs = env.now().as_secs_f64();
    // The paper's Table 1 measures 12.56 s for this exact shape.
    assert!(
        (7.0..20.0).contains(&secs),
        "100x5s map should take ~8-15 s end-to-end, got {secs}"
    );
}

#[test]
fn vm_backend_runs_map_on_consolidated_instance() {
    let mut env = CloudEnv::new_default(13);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let inputs: Vec<Payload> = (0..8).map(Payload::U64).collect();
    let job = exec.map(&mut env, double_factory(), inputs);
    let results = exec.get_result(&mut env, job).expect("job succeeds");
    assert_eq!(results.len(), 8);
    assert_eq!(results[3], Payload::U64(6));
    // VM time was billed, not Lambda time... but only after teardown.
    exec.shutdown(&mut env);
    let ledger = env.world().ledger();
    assert_eq!(ledger.total_for(CostCategory::FaasCompute), 0.0);
    assert!(ledger.total_for(CostCategory::VmCompute) > 0.0);
    // Provisioning dominates: ~30 s boot + setup + ssh + work.
    let secs = env.now().as_secs_f64();
    assert!((30.0..90.0).contains(&secs), "got {secs}");
}

#[test]
fn vm_backend_reuses_instances_across_jobs() {
    let mut env = CloudEnv::new_default(13);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let job = exec.map(&mut env, double_factory(), vec![Payload::U64(1)]);
    exec.get_result(&mut env, job).unwrap();
    let after_first = env.now().as_secs_f64();
    let job = exec.map(&mut env, double_factory(), vec![Payload::U64(2)]);
    exec.get_result(&mut env, job).unwrap();
    let second_duration = env.now().as_secs_f64() - after_first;
    // No second boot: the job runs in a few seconds.
    assert!(
        second_duration < 0.5 * after_first,
        "second job ({second_duration} s) should be much faster than first ({after_first} s)"
    );
    exec.shutdown(&mut env);
}

#[test]
fn vm_backend_without_reuse_tears_down_after_job() {
    let mut env = CloudEnv::new_default(13);
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.reuse_instances = false;
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);
    let job = exec.map(&mut env, double_factory(), vec![Payload::U64(1)]);
    exec.get_result(&mut env, job).unwrap();
    // VM billing already recorded without an explicit shutdown.
    assert!(env.world().ledger().total_for(CostCategory::VmCompute) > 0.0);
}

#[test]
fn vm_fleet_mode_uses_master_plus_workers() {
    let mut env = CloudEnv::new_default(17);
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.exec_mode = ExecMode::Fleet {
        instance_type: "c5.2xlarge".into(),
        count: 2,
    };
    cfg.standalone.reuse_instances = false;
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);
    let inputs: Vec<Payload> = (0..32).map(Payload::U64).collect();
    let job = exec.map(&mut env, double_factory(), inputs);
    let results = exec.get_result(&mut env, job).expect("job succeeds");
    assert_eq!(results.len(), 32);
    // Three VMs were billed: master + 2 workers.
    let entries = env
        .world()
        .ledger()
        .entries()
        .iter()
        .filter(|e| e.category == CostCategory::VmCompute)
        .count();
    assert_eq!(entries, 3);
}

#[test]
fn hybrid_listing1_flow_passes_cloudobjects_between_backends() {
    // The paper's Listing 1: create objects on Lambda, double them on EC2.
    let mut env = CloudEnv::new_default(19);
    let _storage = Storage::new("lithops-workspace");

    // Stage 1 on Lambda: store x*10 as a cloudobject.
    let mut lambda = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let create: serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let x = input.as_u64().expect("u64");
        let data = Payload::U64(x * 10).encode();
        let key = format!("stage1/{x}");
        let len = data.len() as u64;
        ScriptTask::new()
            .put("lithops-workspace", &key, ObjectBody::real(data))
            .finish_value(Payload::CloudObject(serverful::CloudObjectRef::new(
                "lithops-workspace",
                key,
                len,
            )))
            .boxed()
    });
    let job = lambda.map(&mut env, create, vec![Payload::U64(1), Payload::U64(2)]);
    let cobjs = lambda.get_result(&mut env, job).expect("stage 1");

    // Stage 2 on EC2: read each object, double, return the value.
    let mut ec2 = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let double: serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let r = input.as_cloudobject().expect("ref").clone();
        ScriptTask::new()
            .get(r.bucket.clone(), r.key.clone())
            .compute(0.1)
            .finish_with(|_, outcomes| {
                let body = match &outcomes[0] {
                    serverful::ActionOutcome::Object(b) => b,
                    other => panic!("unexpected {other:?}"),
                };
                let inner = Payload::decode(body.bytes().unwrap()).unwrap();
                TaskStep::Finish(Payload::U64(inner.as_u64().unwrap() * 2))
            })
            .boxed()
    });
    let job = ec2.map_with(
        &mut env,
        double,
        cobjs,
        MapOptions::named("double").stateful(),
    );
    let results = ec2.get_result(&mut env, job).expect("stage 2");
    assert_eq!(results, vec![Payload::U64(20), Payload::U64(40)]);
    ec2.shutdown(&mut env);

    // Both backends were billed.
    let ledger = env.world().ledger();
    assert!(ledger.total_for(CostCategory::FaasCompute) > 0.0);
    assert!(ledger.total_for(CostCategory::VmCompute) > 0.0);
    // The timeline recorded both stages, the second stateful.
    let tl = env.timeline();
    assert_eq!(tl.spans().len(), 2);
    assert!(tl.span("double").unwrap().stateful);
}

#[test]
fn failed_task_surfaces_as_error() {
    let mut env = CloudEnv::new_default(23);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let failing: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .get("nope-bucket", "nope-key")
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, failing, vec![Payload::Unit]);
    let err = exec.get_result(&mut env, job).expect_err("must fail");
    assert!(err.to_string().contains("task failed"), "{err}");
}

#[test]
fn kv_access_fails_cleanly_on_faas_backend() {
    let mut env = CloudEnv::new_default(29);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let kv_task: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .action(serverful::Action::KvGet { key: "x".into() })
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, kv_task, vec![Payload::Unit]);
    let err = exec.get_result(&mut env, job).expect_err("must fail");
    assert!(err.to_string().contains("unsupported"), "{err}");
}

#[test]
fn kv_actions_work_on_vm_backend() {
    let mut env = CloudEnv::new_default(31);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    // Task 0 writes to the master KV; then a second job reads it back
    // (same pool, instances reused).
    let writer: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .action(serverful::Action::KvPut {
                key: "shared".into(),
                body: ObjectBody::real(vec![42u8]),
            })
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, writer, vec![Payload::Unit]);
    exec.get_result(&mut env, job).unwrap();

    let reader: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .action(serverful::Action::KvGet {
                key: "shared".into(),
            })
            .finish_with(|_, outcomes| match &outcomes[0] {
                serverful::ActionOutcome::KvValue(Some(body)) => {
                    TaskStep::Finish(Payload::U64(body.bytes().unwrap()[0] as u64))
                }
                other => panic!("unexpected {other:?}"),
            })
            .boxed()
    });
    let job = exec.map(&mut env, reader, vec![Payload::Unit]);
    let results = exec.get_result(&mut env, job).unwrap();
    assert_eq!(results, vec![Payload::U64(42)]);
    exec.shutdown(&mut env);
}

#[test]
fn deterministic_end_to_end() {
    let run = || {
        let mut env = CloudEnv::new_default(37);
        let mut exec =
            FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
        let job = exec.map(&mut env, double_factory(), (0..10).map(Payload::U64).collect());
        exec.get_result(&mut env, job).unwrap();
        (env.now(), env.world().ledger().total())
    };
    assert_eq!(run(), run());
}
