//! Property tests of the per-job completion-monitor future.
//!
//! The monitor is one kernel future per job; its cardinal invariant is
//! that the LIST cycle never forks: at any instant at most one LIST is
//! in flight per job, across monitor restarts (straggler speculation
//! sharing the loop, master kills, checkpointed re-adoption replaying
//! the monitor on a replacement master). `CloudEnv::monitor_list_overlap`
//! tracks the high-water mark of concurrent same-generation LISTs; every
//! property here drives a full job and asserts the mark stayed at 1.
//!
//! No crates.io access means no `proptest`; cases are drawn from
//! [`SimRng`] with the failing seed printed on assertion failure, like
//! the retry-policy properties.

use std::sync::Arc;

use serverful::job::TaskFactory;
use serverful::{
    Backend, CloudEnv, ExecMode, ExecutorConfig, Payload, RecoveryMode, ScriptTask,
};
use serverful::FunctionExecutor;
use simkernel::SimRng;

const TASKS: usize = 10;

fn double_factory() -> TaskFactory {
    Arc::new(|input: &Payload| {
        let x = input.as_u64().expect("u64 input");
        ScriptTask::new()
            .compute(1.0)
            .finish_value(Payload::U64(x * 2))
            .boxed()
    })
}

fn expected() -> Vec<Payload> {
    (0..TASKS as u64).map(|x| Payload::U64(x * 2)).collect()
}

fn vm_config() -> ExecutorConfig {
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.exec_mode = ExecMode::Fleet {
        instance_type: "c5.large".to_owned(),
        count: 2,
    };
    cfg.standalone.recovery = RecoveryMode::Checkpointed;
    cfg.standalone.poll_interval = 0.5;
    cfg
}

/// Runs one VM-backend job, arming master kills at the given event
/// indices; returns (results, LIST high-water mark, events routed).
/// Every armed kill must actually fire — a kill index beyond the run's
/// event span would make the recovery property vacuous.
fn run_vm_job(seed: u64, kills: &[u64]) -> (Vec<Payload>, u32, u64) {
    let mut env = CloudEnv::new_default(seed);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), vm_config());
    for &at in kills {
        env.arm_master_kill(0, at);
    }
    let inputs: Vec<Payload> = (0..TASKS as u64).map(Payload::U64).collect();
    let job = exec.map(&mut env, double_factory(), inputs);
    let results = exec
        .get_result(&mut env, job)
        .expect("checkpointed job survives the master kill");
    assert_eq!(
        env.pending_master_kills(),
        0,
        "an armed master kill never fired"
    );
    assert_eq!(
        env.recovery_stats().masters_replaced,
        kills.len() as u64,
        "each fired kill boots exactly one replacement master"
    );
    (results, env.monitor_list_overlap(), env.events_routed())
}

/// Fault-free runs on both backends keep exactly one LIST in flight.
#[test]
fn fault_free_monitor_never_overlaps_lists() {
    for seed in [3, 17, 99] {
        let mut env = CloudEnv::new_default(seed);
        let mut exec =
            FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
        let inputs: Vec<Payload> = (0..TASKS as u64).map(Payload::U64).collect();
        let job = exec.map(&mut env, double_factory(), inputs);
        assert_eq!(exec.get_result(&mut env, job).unwrap(), expected());
        assert!(
            env.monitor_list_overlap() <= 1,
            "seed {seed}: FaaS monitor forked the LIST cycle \
             (overlap {})",
            env.monitor_list_overlap()
        );

        let (results, overlap, _) = run_vm_job(seed, &[]);
        assert_eq!(results, expected());
        assert!(overlap <= 1, "seed {seed}: VM monitor overlap {overlap}");
    }
}

/// A straggler-speculating FaaS monitor shares the tick loop's
/// cancellation scope and still never forks the LIST cycle.
#[test]
fn straggler_speculation_shares_the_list_cycle() {
    for seed in [5, 23] {
        let mut env = CloudEnv::new_default(seed);
        let mut cfg = ExecutorConfig::default();
        // Aggressive enough that speculation actually fires on the
        // slowest cold starts.
        cfg.retry.straggler_timeout_secs = Some(4.0);
        let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), cfg);
        let inputs: Vec<Payload> = (0..TASKS as u64).map(Payload::U64).collect();
        let job = exec.map(&mut env, double_factory(), inputs);
        assert_eq!(exec.get_result(&mut env, job).unwrap(), expected());
        let overlap = env.monitor_list_overlap();
        assert!(
            overlap <= 1,
            "seed {seed}: speculating monitor overlap {overlap}"
        );
    }
}

/// The property the checkpoint-recovery machinery must uphold: killing
/// the master mid-run replays the monitor on the replacement, and the
/// replayed monitor *continues* the LIST cycle rather than forking a
/// second one. Kill points are drawn from the middle half of the
/// fault-free run's event span, so the monitor is genuinely mid-cycle.
#[test]
fn replayed_monitor_never_forks_the_list_cycle() {
    for case in 0..6u64 {
        let seed = 0x11577 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = SimRng::seed_from(seed);
        let base_seed = rng.uniform_u64(1, 1 << 20);
        let (baseline, overlap, span) = run_vm_job(base_seed, &[]);
        assert_eq!(baseline, expected());
        assert!(overlap <= 1, "seed {seed:#x}: baseline overlap {overlap}");

        let kill = rng.uniform_u64(span / 4, 3 * span / 4);
        let (results, overlap, _) = run_vm_job(base_seed, &[kill]);
        assert_eq!(
            results,
            expected(),
            "seed {seed:#x}: kill at event {kill} corrupted results"
        );
        assert!(
            overlap <= 1,
            "seed {seed:#x}: monitor replayed after the kill at event \
             {kill} forked the LIST cycle (overlap {overlap})"
        );
    }
}
