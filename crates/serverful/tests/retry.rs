//! Property-style tests for [`RetryPolicy`]: the backoff schedule and
//! attempt accounting the whole fault-recovery layer leans on.
//!
//! No crates.io access means no `proptest`; instead each property runs
//! over a few hundred seeded random policies/salts drawn from
//! [`SimRng`], printing the failing case's seed on assertion failure
//! (`SimRng::seed_from(seed)` regenerates the exact case).

use serverful::RetryPolicy;
use simkernel::SimRng;

/// Runs `body` over `n` seeded cases; the case seed is passed through
/// so failures print a reproducible starting point.
fn forall_cases(n: u64, mut body: impl FnMut(u64, &mut SimRng)) {
    for case in 0..n {
        let seed = 0xBACC0FF ^ case.wrapping_mul(0x9E3779B97F4A7C15);
        let mut rng = SimRng::seed_from(seed);
        body(seed, &mut rng);
    }
}

/// An arbitrary but sane retry policy.
fn arb_policy(rng: &mut SimRng) -> RetryPolicy {
    RetryPolicy {
        max_attempts: rng.uniform_u64(1, 10) as u32,
        base_backoff_secs: rng.uniform(0.0, 5.0),
        backoff_multiplier: rng.uniform(1.0, 4.0),
        max_backoff_secs: rng.uniform(1.0, 120.0),
        jitter_frac: rng.uniform(0.0, 1.0),
        straggler_timeout_secs: None,
    }
}

/// Un-jittered backoff is monotone non-decreasing in the attempt
/// number: a later failure never waits less than an earlier one.
#[test]
fn backoff_is_monotone_in_attempt() {
    forall_cases(300, |seed, rng| {
        let p = arb_policy(rng);
        let mut prev = 0.0f64;
        for attempt in 1..=30u32 {
            let b = p.backoff_secs(attempt);
            assert!(
                b >= prev,
                "seed {seed:#x}: backoff({attempt}) = {b} < backoff({}) = {prev} for {p:?}",
                attempt - 1
            );
            prev = b;
        }
    });
}

/// Backoff (jittered or not) never exceeds the configured cap plus its
/// jitter allowance, and is never negative.
#[test]
fn backoff_is_bounded_by_the_cap() {
    forall_cases(300, |seed, rng| {
        let p = arb_policy(rng);
        let salt = rng.next_u64();
        for attempt in 1..=40u32 {
            let base = p.backoff_secs(attempt);
            assert!(
                (0.0..=p.max_backoff_secs).contains(&base),
                "seed {seed:#x}: backoff({attempt}) = {base} outside [0, {}]",
                p.max_backoff_secs
            );
            let jittered = p.jittered_backoff_secs(attempt, salt);
            let cap = p.max_backoff_secs * (1.0 + p.jitter_frac) + 1e-9;
            assert!(
                jittered >= base && jittered <= cap,
                "seed {seed:#x}: jittered({attempt}, {salt}) = {jittered} outside [{base}, {cap}]"
            );
        }
    });
}

/// Jitter is a pure function of `(policy, attempt, salt)`: recomputing
/// it yields the same delay, always — the bedrock of replayable chaos.
#[test]
fn jittered_backoff_is_deterministic() {
    forall_cases(300, |seed, rng| {
        let p = arb_policy(rng);
        for _ in 0..16 {
            let attempt = rng.uniform_u64(1, 20) as u32;
            let salt = rng.next_u64();
            let a = p.jittered_backoff_secs(attempt, salt);
            let b = p.jittered_backoff_secs(attempt, salt);
            assert_eq!(
                a, b,
                "seed {seed:#x}: jitter not reproducible for attempt {attempt}, salt {salt}"
            );
        }
    });
}

/// Distinct salts actually spread retries out: across many salts the
/// jittered delays are not all identical (unless jitter is disabled).
#[test]
fn jitter_spreads_across_salts() {
    let p = RetryPolicy::default();
    let first = p.jittered_backoff_secs(3, 0);
    let spread = (1..200u64).any(|salt| p.jittered_backoff_secs(3, salt) != first);
    assert!(spread, "200 salts all produced the same jittered backoff");
}

/// Simulating the executor's bookkeeping — attempt, fail, consult the
/// policy — never runs more attempts than `max_attempts`, and runs
/// exactly `max_attempts` when every attempt fails.
#[test]
fn attempts_never_exceed_the_budget() {
    forall_cases(300, |seed, rng| {
        let p = arb_policy(rng);
        let mut attempts = 0u32;
        loop {
            attempts += 1; // the attempt itself (it fails)
            if !p.allows_retry(attempts) {
                break;
            }
            assert!(
                attempts < p.max_attempts,
                "seed {seed:#x}: retry allowed after {attempts}/{} attempts",
                p.max_attempts
            );
        }
        assert_eq!(
            attempts, p.max_attempts,
            "seed {seed:#x}: an all-failing task must use exactly the budget"
        );
    });
}
