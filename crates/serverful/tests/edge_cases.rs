//! Edge cases and failure injection for the executor framework.

use std::sync::Arc;

use cloudsim::ObjectBody;
use serverful::executor::MapOptions;
use serverful::task::{Action, ActionOutcome, TaskLogic, TaskStep};
use serverful::{
    Backend, CloudEnv, ExecError, ExecutorConfig, FunctionExecutor, Payload, ScriptTask,
};

fn noop_factory(cpu: f64) -> serverful::job::TaskFactory {
    Arc::new(move |_| {
        ScriptTask::new()
            .compute(cpu)
            .finish_value(Payload::Unit)
            .boxed()
    })
}

#[test]
fn get_many_with_one_missing_key_fails_the_task() {
    let mut env = CloudEnv::new_default(71);
    env.seed_object("b", "present-0", ObjectBody::opaque(10));
    env.seed_object("b", "present-1", ObjectBody::opaque(10));
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .get_many(
                "b",
                vec!["present-0".into(), "missing".into(), "present-1".into()],
            )
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, factory, vec![Payload::Unit]);
    let err = exec.get_result(&mut env, job).expect_err("must fail");
    assert!(matches!(err, ExecError::TaskFailed(_)), "{err}");
}

#[test]
fn list_action_sees_previously_written_objects() {
    let mut env = CloudEnv::new_default(73);
    for i in 0..5 {
        env.seed_object("b", &format!("items/{i}"), ObjectBody::opaque(1));
    }
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .action(Action::List {
                bucket: "b".into(),
                prefix: "items/".into(),
            })
            .finish_with(|_, outcomes| match &outcomes[0] {
                ActionOutcome::Keys(keys) => TaskStep::Finish(Payload::U64(keys.len() as u64)),
                other => panic!("unexpected {other:?}"),
            })
            .boxed()
    });
    let job = exec.map(&mut env, factory, vec![Payload::Unit]);
    let results = exec.get_result(&mut env, job).unwrap();
    assert_eq!(results, vec![Payload::U64(5)]);
}

#[test]
fn delete_action_removes_objects() {
    let mut env = CloudEnv::new_default(79);
    env.seed_object("b", "victim", ObjectBody::opaque(1));
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .action(Action::Delete {
                bucket: "b".into(),
                key: "victim".into(),
            })
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, factory, vec![Payload::Unit]);
    exec.get_result(&mut env, job).unwrap();
    assert!(env.world().store().get("b", "victim").is_none());
}

#[test]
fn sleep_action_advances_time_without_cpu() {
    let mut env = CloudEnv::new_default(83);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .sleep(30.0)
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, factory, vec![Payload::Unit]);
    exec.get_result(&mut env, job).unwrap();
    assert!(env.now().as_secs_f64() > 30.0);
}

/// A logic that fails on demand partway through a multi-op action.
struct FailAfterRead;

impl TaskLogic for FailAfterRead {
    fn on_start(&mut self, _input: &Payload) -> TaskStep {
        TaskStep::Act(Action::Get {
            bucket: "b".into(),
            key: "data".into(),
        })
    }

    fn on_action(&mut self, _outcome: ActionOutcome) -> TaskStep {
        TaskStep::Fail("deliberate failure after read".into())
    }
}

#[test]
fn explicit_task_failure_propagates_message() {
    let mut env = CloudEnv::new_default(89);
    env.seed_object("b", "data", ObjectBody::opaque(64));
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let factory: serverful::job::TaskFactory = Arc::new(|_| Box::new(FailAfterRead));
    let job = exec.map(&mut env, factory, vec![Payload::Unit]);
    let err = exec.get_result(&mut env, job).expect_err("must fail");
    assert!(err.to_string().contains("deliberate failure"), "{err}");
}

#[test]
fn failure_in_one_task_fails_fast_without_hanging_others() {
    let mut env = CloudEnv::new_default(97);
    env.seed_object("b", "ok", ObjectBody::opaque(8));
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    // Task 0 reads a missing key; the rest compute for a long time.
    let factory: serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        if input.as_u64() == Some(0) {
            ScriptTask::new()
                .get("b", "missing")
                .finish_value(Payload::Unit)
                .boxed()
        } else {
            ScriptTask::new()
                .compute(1000.0)
                .finish_value(Payload::Unit)
                .boxed()
        }
    });
    let job = exec.map(&mut env, factory, (0..4).map(Payload::U64).collect());
    let err = exec.get_result(&mut env, job).expect_err("must fail");
    assert!(matches!(err, ExecError::TaskFailed(_)));
    // The failure surfaced long before the healthy tasks' 1000 s.
    assert!(env.now().as_secs_f64() < 100.0);
}

#[test]
fn consolidated_pool_reprovisions_when_inputs_outgrow_the_vm() {
    let mut env = CloudEnv::new_default(101);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    // First job: tiny inputs -> small instance.
    let job = exec.map(&mut env, noop_factory(0.5), vec![Payload::Unit]);
    exec.get_result(&mut env, job).unwrap();
    let t_after_small = env.now().as_secs_f64();
    // Second job: inputs referencing 30 GB -> needs a bigger instance ->
    // terminate + boot again.
    let big = Payload::CloudObject(serverful::CloudObjectRef::new(
        "b",
        "huge",
        30_000_000_000,
    ));
    env.seed_object("b", "huge", ObjectBody::opaque(30_000_000_000));
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .compute(0.5)
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, factory, vec![big]);
    exec.get_result(&mut env, job).unwrap();
    let second_duration = env.now().as_secs_f64() - t_after_small;
    assert!(
        second_duration > 25.0,
        "a re-boot should dominate the second job, got {second_duration:.1} s"
    );
    exec.shutdown(&mut env);
    // Two worker VMs were billed (the small one and its replacement).
    let vm_entries = env
        .world()
        .ledger()
        .entries()
        .iter()
        .filter(|e| e.category == telemetry::CostCategory::VmCompute)
        .count();
    assert_eq!(vm_entries, 2);
}

#[test]
fn vm_jobs_queue_fifo_on_one_pool() {
    let mut env = CloudEnv::new_default(103);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    // Submit two jobs back to back, then redeem in order.
    let job_a = exec.map_with(
        &mut env,
        noop_factory(1.0),
        vec![Payload::Unit],
        MapOptions::named("first"),
    );
    let job_b = exec.map_with(
        &mut env,
        noop_factory(1.0),
        vec![Payload::Unit],
        MapOptions::named("second"),
    );
    exec.get_result(&mut env, job_a).unwrap();
    exec.get_result(&mut env, job_b).unwrap();
    let tl = env.timeline();
    let first = tl.span("first").unwrap();
    let second = tl.span("second").unwrap();
    assert!(second.end >= first.end, "jobs complete in submission order");
    exec.shutdown(&mut env);
}

#[test]
fn two_faas_jobs_can_interleave() {
    // Two executors submit before either redeems; both complete.
    let mut env = CloudEnv::new_default(107);
    let mut a = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let mut b = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let job_a = a.map(&mut env, noop_factory(2.0), vec![Payload::Unit; 3]);
    let job_b = b.map(&mut env, noop_factory(2.0), vec![Payload::Unit; 3]);
    let ra = a.get_result(&mut env, job_a).unwrap();
    let rb = b.get_result(&mut env, job_b).unwrap();
    assert_eq!(ra.len(), 3);
    assert_eq!(rb.len(), 3);
    // Interleaved execution: the whole thing took about one job's time,
    // not two.
    assert!(env.now().as_secs_f64() < 25.0, "{}", env.now());
}

#[test]
fn results_preserve_input_order_despite_out_of_order_completion() {
    let mut env = CloudEnv::new_default(109);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    // Task i computes for (10 - i) seconds: later inputs finish earlier.
    let factory: serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let i = input.as_u64().unwrap();
        ScriptTask::new()
            .compute((10 - i) as f64)
            .finish_value(Payload::U64(i))
            .boxed()
    });
    let job = exec.map(&mut env, factory, (0..10).map(Payload::U64).collect());
    let results = exec.get_result(&mut env, job).unwrap();
    let expected: Vec<Payload> = (0..10).map(Payload::U64).collect();
    assert_eq!(results, expected);
}

#[test]
fn empty_map_panics_loudly() {
    let mut env = CloudEnv::new_default(113);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exec.map(&mut env, noop_factory(1.0), vec![])
    }));
    assert!(result.is_err());
}

#[test]
fn io_overlap_accounting_stays_balanced() {
    // Busy counts must return to zero after a heavy-I/O job; otherwise
    // the Table 3 statistics would drift.
    let mut env = CloudEnv::new_default(127);
    for i in 0..8 {
        env.seed_object("b", &format!("in/{i}"), ObjectBody::opaque(50_000_000));
    }
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let factory: serverful::job::TaskFactory = Arc::new(|input: &Payload| {
        let i = input.as_u64().unwrap();
        ScriptTask::new()
            .get("b", format!("in/{i}"))
            .compute(1.0)
            .put("b", format!("out/{i}"), ObjectBody::opaque(1_000_000))
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map(&mut env, factory, (0..8).map(Payload::U64).collect());
    exec.get_result(&mut env, job).unwrap();
    let end = env.now();
    // After completion nothing is provisioned except the scheduler, and
    // no stray busy fractions remain: utilisation is exactly the
    // scheduler's own (1 busy of 1 provisioned = 100 %) or zero-busy.
    let samples = env.world().cpu_monitor().utilisation_samples(
        end,
        end + simkernel::SimDuration::from_secs(1),
        simkernel::SimDuration::from_millis(500),
    );
    for s in samples {
        assert!(
            s.abs() < 1e-6 || (s - 100.0).abs() < 1e-6,
            "residual busy fraction: {s}"
        );
    }
}
