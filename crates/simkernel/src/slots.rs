//! FIFO vCPU slot pools.
//!
//! [`SlotPool`] models the compute capacity of a host: `capacity` slots,
//! each able to run one job at a time, with excess jobs waiting in FIFO
//! order. Like [`FairShare`](crate::FairShare), the pool owns no event
//! queue — the driver schedules a completion event for every admission the
//! pool reports.

use std::collections::VecDeque;

/// A FIFO pool of identical compute slots.
///
/// The pool hands out *admissions*; the caller is responsible for
/// scheduling the corresponding completion and for calling
/// [`SlotPool::release`] when it fires.
///
/// # Example
///
/// ```
/// let mut pool: simkernel::SlotPool<&'static str> = simkernel::SlotPool::new(1);
/// assert_eq!(pool.submit("a"), Some("a")); // admitted immediately
/// assert_eq!(pool.submit("b"), None);      // queued
/// assert_eq!(pool.release(), Some("b"));   // "a" done -> "b" admitted
/// assert_eq!(pool.release(), None);        // "b" done -> idle
/// ```
#[derive(Debug, Clone)]
pub struct SlotPool<K> {
    capacity: usize,
    busy: usize,
    queue: VecDeque<K>,
}

impl<K> SlotPool<K> {
    /// Creates a pool with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "slot pool needs at least one slot");
        SlotPool {
            capacity,
            busy: 0,
            queue: VecDeque::new(),
        }
    }

    /// Submits a job. Returns `Some(job)` if a slot was free and the job
    /// starts now; otherwise the job joins the FIFO queue and `None` is
    /// returned.
    pub fn submit(&mut self, job: K) -> Option<K> {
        if self.busy < self.capacity {
            self.busy += 1;
            Some(job)
        } else {
            self.queue.push_back(job);
            None
        }
    }

    /// Releases one slot (a running job finished). If a job was queued, it
    /// is admitted and returned so the caller can schedule its completion.
    ///
    /// # Panics
    ///
    /// Panics if no slot was busy.
    pub fn release(&mut self) -> Option<K> {
        assert!(self.busy > 0, "released a slot that was never acquired");
        match self.queue.pop_front() {
            Some(job) => Some(job), // slot transfers directly to the next job
            None => {
                self.busy -= 1;
                None
            }
        }
    }

    /// Number of slots currently running jobs.
    pub fn busy(&self) -> usize {
        self.busy
    }

    /// Total slots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs waiting for a slot.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// True when no job is running or queued.
    pub fn is_idle(&self) -> bool {
        self.busy == 0 && self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_up_to_capacity() {
        let mut pool = SlotPool::new(2);
        assert_eq!(pool.submit(1), Some(1));
        assert_eq!(pool.submit(2), Some(2));
        assert_eq!(pool.submit(3), None);
        assert_eq!(pool.busy(), 2);
        assert_eq!(pool.queued(), 1);
    }

    #[test]
    fn fifo_order_on_release() {
        let mut pool = SlotPool::new(1);
        pool.submit("a");
        pool.submit("b");
        pool.submit("c");
        assert_eq!(pool.release(), Some("b"));
        assert_eq!(pool.release(), Some("c"));
        assert_eq!(pool.release(), None);
        assert!(pool.is_idle());
    }

    #[test]
    fn busy_count_tracks_transfers() {
        let mut pool = SlotPool::new(1);
        pool.submit(1);
        pool.submit(2);
        // Releasing while the queue is non-empty keeps the slot busy.
        pool.release();
        assert_eq!(pool.busy(), 1);
        pool.release();
        assert_eq!(pool.busy(), 0);
    }

    #[test]
    #[should_panic(expected = "never acquired")]
    fn release_on_idle_pool_panics() {
        let mut pool: SlotPool<u8> = SlotPool::new(1);
        pool.release();
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_capacity_panics() {
        let _: SlotPool<u8> = SlotPool::new(0);
    }
}
