//! The event queue at the heart of the simulation.
//!
//! [`EventQueue`] is a deterministic priority queue of `(SimTime, E)`
//! pairs. Ties are broken by insertion order, so two runs with the same
//! seed and the same schedule produce byte-identical traces. Events can be
//! cancelled through the [`EventToken`] returned at scheduling time; this
//! is how the bandwidth-sharing pools retract a provisional completion
//! when pool membership changes.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::{SimDuration, SimTime};

/// Identifies a scheduled event so it can be cancelled later.
///
/// Tokens are unique for the lifetime of the queue and are never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventToken(u64);

#[derive(Debug)]
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// Lifetime counters of scheduler activity.
///
/// These are the queue's contribution to a trace: they cost two counter
/// increments per event and let an observer report how much scheduling
/// work a run performed without the queue depending on any telemetry
/// machinery.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Events ever scheduled (including later-cancelled ones).
    pub scheduled: u64,
    /// Live events popped by [`EventQueue::next`].
    pub fired: u64,
    /// Events cancelled before firing.
    pub cancelled: u64,
}

/// A deterministic, cancellable discrete-event queue.
///
/// # Example
///
/// ```
/// use simkernel::{EventQueue, SimDuration};
///
/// let mut q: EventQueue<u32> = EventQueue::new();
/// q.schedule_in(SimDuration::from_secs(5), 5);
/// let tok = q.schedule_in(SimDuration::from_secs(1), 1);
/// q.cancel(tok);
/// let (t, ev) = q.next().expect("one live event");
/// assert_eq!((t.as_secs_f64(), ev), (5.0, 5));
/// assert!(q.next().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    // Sorted vec of cancelled seq numbers still sitting in the heap. The
    // set stays tiny because entries are purged as they surface.
    cancelled: Vec<u64>,
    stats: SchedStats,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            cancelled: Vec::new(),
            stats: SchedStats::default(),
        }
    }

    /// Lifetime scheduling counters (see [`SchedStats`]).
    pub fn stats(&self) -> SchedStats {
        self.stats
    }

    /// The current virtual time: the timestamp of the most recently popped
    /// event, or zero if none has been popped yet.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than [`Self::now`]; the simulation cannot
    /// schedule into its own past.
    pub fn schedule_at(&mut self, at: SimTime, event: E) -> EventToken {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {} < {}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.stats.scheduled += 1;
        self.heap.push(Entry { at, seq, event });
        EventToken(seq)
    }

    /// Schedules `event` after `delay` from the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) -> EventToken {
        self.schedule_at(self.now + delay, event)
    }

    /// Cancels a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, token: EventToken) {
        if let Err(pos) = self.cancelled.binary_search(&token.0) {
            self.cancelled.insert(pos, token.0);
            self.stats.cancelled += 1;
        }
    }

    /// Pops the next live event, advancing the clock to its timestamp.
    /// Returns `None` when the queue has drained.
    ///
    /// Named `next` deliberately (the queue is not an `Iterator`: popping
    /// advances the simulation clock, a semantic iterators must not have).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                continue;
            }
            debug_assert!(entry.at >= self.now, "event heap went backwards");
            self.now = entry.at;
            self.stats.fired += 1;
            return Some((entry.at, entry.event));
        }
        None
    }

    /// The timestamp of the next live event without popping it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if let Ok(pos) = self.cancelled.binary_search(&entry.seq) {
                self.cancelled.remove(pos);
                self.heap.pop();
                continue;
            }
            return Some(entry.at);
        }
        None
    }

    /// Number of live (not cancelled) events currently scheduled.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_secs_f64(3.0), "c");
        q.schedule_at(SimTime::from_secs_f64(1.0), "a");
        q.schedule_at(SimTime::from_secs_f64(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.next()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs_f64(1.0);
        for i in 0..10 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.next()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.next();
        assert_eq!(q.now(), SimTime::from_secs_f64(2.0));
        // schedule_in is now relative to t=2.
        q.schedule_in(SimDuration::from_secs(1), ());
        let (t, _) = q.next().unwrap();
        assert_eq!(t, SimTime::from_secs_f64(3.0));
    }

    #[test]
    fn cancel_is_idempotent_and_skips() {
        let mut q = EventQueue::new();
        let tok = q.schedule_in(SimDuration::from_secs(1), 1);
        q.schedule_in(SimDuration::from_secs(2), 2);
        q.cancel(tok);
        q.cancel(tok);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next().map(|(_, e)| e), Some(2));
        assert!(q.next().is_none());
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let tok = q.schedule_in(SimDuration::from_secs(1), 1);
        q.schedule_in(SimDuration::from_secs(2), 2);
        assert_eq!(q.next().map(|(_, e)| e), Some(1));
        q.cancel(tok);
        assert_eq!(q.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.schedule_in(SimDuration::from_secs(1), 1);
        q.schedule_in(SimDuration::from_secs(5), 2);
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs_f64(5.0)));
        assert_eq!(q.next().map(|(_, e)| e), Some(2));
    }

    #[test]
    fn stats_count_scheduled_fired_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.schedule_in(SimDuration::from_secs(1), 1);
        q.schedule_in(SimDuration::from_secs(2), 2);
        q.schedule_in(SimDuration::from_secs(3), 3);
        q.cancel(tok);
        q.cancel(tok); // idempotent: counted once
        while q.next().is_some() {}
        let stats = q.stats();
        assert_eq!(stats.scheduled, 3);
        assert_eq!(stats.fired, 2);
        assert_eq!(stats.cancelled, 1);
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_in(SimDuration::from_secs(2), ());
        q.next();
        q.schedule_at(SimTime::from_secs_f64(1.0), ());
    }
}
