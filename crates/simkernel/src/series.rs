//! Step-function time series.
//!
//! [`StepSeries`] records a piecewise-constant signal — number of busy
//! vCPUs, provisioned capacity, in-flight requests — as it changes over
//! virtual time, and supports the integrations the evaluation needs:
//! time-weighted means, fixed-interval sampling (the paper samples CPU
//! usage at one-second granularity for Table 3) and integrals (vCPU-seconds
//! for billing cross-checks).

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant time series. The value at a time `t` is the value
/// most recently set at or before `t`; before the first point it is the
/// `initial` value given at construction.
///
/// # Example
///
/// ```
/// use simkernel::{SimTime, StepSeries};
///
/// let mut s = StepSeries::new(0.0);
/// s.set(SimTime::from_secs_f64(1.0), 4.0);
/// s.set(SimTime::from_secs_f64(3.0), 2.0);
/// assert_eq!(s.value_at(SimTime::from_secs_f64(2.0)), 4.0);
/// // mean over [0, 4): (0*1 + 4*2 + 2*1) / 4 = 2.5
/// let mean = s.time_weighted_mean(SimTime::ZERO, SimTime::from_secs_f64(4.0));
/// assert!((mean - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct StepSeries {
    initial: f64,
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates a series whose value is `initial` until the first `set`.
    pub fn new(initial: f64) -> Self {
        StepSeries {
            initial,
            points: Vec::new(),
        }
    }

    /// Records that the signal takes value `value` from time `t` onwards.
    ///
    /// # Panics
    ///
    /// Panics if `t` precedes the last recorded point (the series is
    /// append-only). Setting at the same instant overwrites.
    pub fn set(&mut self, t: SimTime, value: f64) {
        if let Some(&mut (last_t, ref mut last_v)) = self.points.last_mut() {
            assert!(t >= last_t, "StepSeries points must be time-ordered");
            if last_t == t {
                *last_v = value;
                return;
            }
        }
        self.points.push((t, value));
    }

    /// Adds `delta` to the current value from time `t` onwards.
    pub fn add(&mut self, t: SimTime, delta: f64) {
        let current = self.last_value();
        self.set(t, current + delta);
    }

    /// The most recently set value (or the initial value).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(self.initial, |&(_, v)| v)
    }

    /// The value of the signal at time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => self.points[i].1,
            Err(0) => self.initial,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// Integral of the signal over `[from, to)`, in value·seconds.
    ///
    /// # Panics
    ///
    /// Panics if `to < from`.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to >= from, "integral interval reversed");
        if to == from {
            return 0.0;
        }
        let mut total = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        let start = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, v) in &self.points[start..] {
            if pt >= to {
                break;
            }
            total += value * (pt - cursor).as_secs_f64();
            cursor = pt;
            value = v;
        }
        total += value * (to - cursor).as_secs_f64();
        total
    }

    /// Time-weighted mean over `[from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if `to <= from`.
    pub fn time_weighted_mean(&self, from: SimTime, to: SimTime) -> f64 {
        assert!(to > from, "mean over an empty interval");
        self.integral(from, to) / (to - from).as_secs_f64()
    }

    /// Samples the signal at `from, from+every, ...` strictly before `to`.
    /// This mirrors the paper's fixed-interval CPU-usage sampling.
    pub fn sample(&self, from: SimTime, to: SimTime, every: SimDuration) -> Vec<f64> {
        assert!(!every.is_zero(), "sampling interval must be positive");
        let mut out = Vec::new();
        let mut t = from;
        while t < to {
            out.push(self.value_at(t));
            t += every;
        }
        out
    }

    /// The recorded change points `(time, value)`.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn value_at_follows_steps() {
        let mut s = StepSeries::new(1.0);
        s.set(t(1.0), 5.0);
        s.set(t(2.0), 3.0);
        assert_eq!(s.value_at(t(0.5)), 1.0);
        assert_eq!(s.value_at(t(1.0)), 5.0);
        assert_eq!(s.value_at(t(1.9)), 5.0);
        assert_eq!(s.value_at(t(10.0)), 3.0);
    }

    #[test]
    fn add_accumulates_deltas() {
        let mut s = StepSeries::new(0.0);
        s.add(t(1.0), 2.0);
        s.add(t(2.0), 3.0);
        s.add(t(3.0), -4.0);
        assert_eq!(s.value_at(t(2.5)), 5.0);
        assert_eq!(s.last_value(), 1.0);
    }

    #[test]
    fn same_instant_set_overwrites() {
        let mut s = StepSeries::new(0.0);
        s.set(t(1.0), 2.0);
        s.set(t(1.0), 7.0);
        assert_eq!(s.value_at(t(1.0)), 7.0);
        assert_eq!(s.points().len(), 1);
    }

    #[test]
    fn integral_handles_partial_segments() {
        let mut s = StepSeries::new(2.0);
        s.set(t(2.0), 4.0);
        // [1, 3): 2.0 over [1,2) + 4.0 over [2,3) = 6.0
        assert!((s.integral(t(1.0), t(3.0)) - 6.0).abs() < 1e-12);
        assert_eq!(s.integral(t(1.0), t(1.0)), 0.0);
    }

    #[test]
    fn sampling_matches_step_values() {
        let mut s = StepSeries::new(0.0);
        s.set(t(1.0), 10.0);
        s.set(t(3.0), 20.0);
        let samples = s.sample(SimTime::ZERO, t(5.0), SimDuration::from_secs(1));
        assert_eq!(samples, vec![0.0, 10.0, 10.0, 20.0, 20.0]);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn out_of_order_set_panics() {
        let mut s = StepSeries::new(0.0);
        s.set(t(2.0), 1.0);
        s.set(t(1.0), 1.0);
    }
}
