//! A deterministic single-threaded async executor on virtual time.
//!
//! The executor runs a seeded queue of futures over [`SimTime`]: VM
//! lifecycles, sandbox invocations, storage transfers and monitors
//! become straight-line `await` code instead of callback re-arming and
//! hand-rolled polling loops. Determinism is a hard invariant, not an
//! accident:
//!
//! * **Wakeup order is keyed on `(SimTime, spawn_seq)`.** Every task
//!   carries the sequence number it was spawned with ([`TaskId`]); when
//!   several tasks are runnable at the same virtual instant they run in
//!   ascending spawn order, never in hash-map iteration order. The
//!   ready set is a [`BTreeSet`] and the timer wheel is the kernel's
//!   own [`EventQueue`], so two runs with the same seed and the same
//!   spawn sequence replay byte-identical schedules.
//! * **Wakes are explicit.** The leaf futures ([`AsyncExecutor::sleep`],
//!   [`Gate`], [`Notifier`], [`Slots`], [`JoinHandle`]) register the
//!   polling task with the executor and wake it by [`TaskId`]; the
//!   [`std::task::Waker`] in the poll context is a no-op. External
//!   futures that rely on waker plumbing are therefore not supported —
//!   by design, since third-party reactors would smuggle in
//!   nondeterminism.
//!
//! The executor has two clocking modes:
//!
//! * **Self-clocked** ([`AsyncExecutor::run`]): the executor owns the
//!   clock and advances it timer-batch by timer-batch, like a classic
//!   discrete-event loop. This is what the kernel microbenchmarks and
//!   the pure-executor property tests use.
//! * **Host-clocked** ([`AsyncExecutor::advance_to`] +
//!   [`AsyncExecutor::run_ready`]): an outer simulation (the cloud
//!   world) owns the clock; the executor is pumped after each host
//!   event. This is how the DAG scheduler and the fleet driver bridge
//!   futures onto `CloudEnv`.
//!
//! # Example
//!
//! ```
//! use simkernel::{AsyncExecutor, SimDuration};
//!
//! let exec = AsyncExecutor::new();
//! let order = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
//! for (i, delay) in [3u64, 1, 2].into_iter().enumerate() {
//!     let exec2 = exec.clone();
//!     let order2 = order.clone();
//!     exec.spawn(async move {
//!         exec2.sleep(SimDuration::from_secs(delay)).await;
//!         order2.borrow_mut().push(i);
//!     });
//! }
//! exec.run();
//! assert_eq!(*order.borrow(), vec![1, 2, 0]);
//! assert_eq!(exec.now().as_secs_f64(), 3.0);
//! ```

use std::cell::RefCell;
use std::collections::{BTreeSet, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, Waker};

use crate::engine::{EventQueue, EventToken};
use crate::time::{SimDuration, SimTime};

/// Identifies a spawned task. The numeric value is the task's spawn
/// sequence number and doubles as the deterministic wakeup tie-break:
/// tasks runnable at the same instant run in ascending [`TaskId`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TaskId(u64);

/// Lifetime counters of executor activity, the async twin of
/// [`crate::SchedStats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Tasks ever spawned.
    pub spawned: u64,
    /// Tasks run to completion.
    pub completed: u64,
    /// Individual task polls.
    pub polls: u64,
    /// Explicit wakes delivered (timer fires, gate opens, notifies,
    /// slot handoffs, join completions).
    pub wakes: u64,
    /// Timer entries fired.
    pub timer_fires: u64,
}

type TaskFuture = Pin<Box<dyn Future<Output = ()>>>;

struct Inner {
    /// Task storage, indexed by spawn sequence. A slot is `None` once
    /// its task completed (or while the task is being polled).
    slots: Vec<Option<TaskFuture>>,
    /// Runnable tasks, drained in ascending [`TaskId`] order.
    ready: BTreeSet<u64>,
    /// Sleeping tasks keyed by wake deadline.
    timers: EventQueue<u64>,
    /// The virtual clock (monotonic; host-clocked mode pushes it).
    now: SimTime,
    /// The task currently being polled, if any.
    current: Option<u64>,
    stats: ExecStats,
}

impl Inner {
    fn new() -> Self {
        Inner {
            slots: Vec::new(),
            ready: BTreeSet::new(),
            timers: EventQueue::new(),
            now: SimTime::ZERO,
            current: None,
            stats: ExecStats::default(),
        }
    }

    fn task_alive(&self, id: u64) -> bool {
        self.current == Some(id) || self.slots.get(id as usize).is_some_and(Option::is_some)
    }

    fn wake(&mut self, id: u64) {
        if self.task_alive(id) {
            self.stats.wakes += 1;
            self.ready.insert(id);
        }
    }

    fn current_task(&self) -> u64 {
        self.current
            .expect("simkernel::aio leaf future polled outside its executor")
    }
}

/// Wakes every task in `ids` (used by the shared synchronisation
/// primitives when their executor is still alive).
fn wake_all(exec: &Weak<RefCell<Inner>>, ids: impl IntoIterator<Item = u64>) {
    if let Some(inner) = exec.upgrade() {
        let mut inner = inner.borrow_mut();
        for id in ids {
            inner.wake(id);
        }
    }
}

/// The deterministic async executor. Cloning is cheap and yields a
/// handle to the same run queue (tasks routinely carry a clone to
/// spawn children or sleep).
#[derive(Clone)]
pub struct AsyncExecutor {
    inner: Rc<RefCell<Inner>>,
}

impl Default for AsyncExecutor {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for AsyncExecutor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.borrow();
        f.debug_struct("AsyncExecutor")
            .field("now", &inner.now)
            .field("ready", &inner.ready.len())
            .field("timers", &inner.timers.len())
            .field("stats", &inner.stats)
            .finish()
    }
}

impl AsyncExecutor {
    /// Creates an empty executor positioned at [`SimTime::ZERO`].
    pub fn new() -> Self {
        AsyncExecutor {
            inner: Rc::new(RefCell::new(Inner::new())),
        }
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.borrow().now
    }

    /// Lifetime activity counters.
    pub fn stats(&self) -> ExecStats {
        self.inner.borrow().stats
    }

    /// Number of live (spawned, not yet completed) tasks.
    pub fn pending_tasks(&self) -> usize {
        let inner = self.inner.borrow();
        inner.slots.iter().filter(|s| s.is_some()).count() + usize::from(inner.current.is_some())
    }

    /// Spawns a future as a new task. The task starts runnable and is
    /// first polled on the next [`Self::run_ready`] drain; its spawn
    /// order is its deterministic tie-break forever.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let state = Rc::new(RefCell::new(JoinState {
            result: Option::<T>::None,
            taken: false,
            waiters: Vec::new(),
            exec: Rc::downgrade(&self.inner),
        }));
        let state2 = state.clone();
        let wrapped: TaskFuture = Box::pin(async move {
            let out = fut.await;
            let waiters = {
                let mut st = state2.borrow_mut();
                st.result = Some(out);
                std::mem::take(&mut st.waiters)
            };
            let exec = state2.borrow().exec.clone();
            wake_all(&exec, waiters);
        });
        let mut inner = self.inner.borrow_mut();
        let id = inner.slots.len() as u64;
        inner.slots.push(Some(wrapped));
        inner.ready.insert(id);
        inner.stats.spawned += 1;
        JoinHandle {
            id: TaskId(id),
            state,
        }
    }

    /// A future that completes at absolute virtual time `at` (or
    /// immediately if `at` is not in the future).
    pub fn sleep_until(&self, at: SimTime) -> Sleep {
        Sleep {
            exec: Rc::downgrade(&self.inner),
            at,
            token: None,
            fired: false,
        }
    }

    /// A future that completes after `delay` of virtual time.
    pub fn sleep(&self, delay: SimDuration) -> Sleep {
        let at = self.inner.borrow().now + delay;
        self.sleep_until(at)
    }

    /// Polls every runnable task until the ready set drains, in
    /// ascending spawn order. Tasks woken mid-drain at the same instant
    /// join the same drain (still in spawn order). The clock does not
    /// move.
    pub fn run_ready(&self) {
        loop {
            let (id, fut) = {
                let mut inner = self.inner.borrow_mut();
                let Some(id) = inner.ready.pop_first() else {
                    break;
                };
                let Some(fut) = inner.slots[id as usize].take() else {
                    continue; // completed while queued
                };
                inner.current = Some(id);
                inner.stats.polls += 1;
                (id, fut)
            };
            let mut fut = fut;
            let mut cx = Context::from_waker(Waker::noop());
            let poll = fut.as_mut().poll(&mut cx);
            let mut inner = self.inner.borrow_mut();
            inner.current = None;
            match poll {
                Poll::Ready(()) => {
                    inner.ready.remove(&id);
                    inner.stats.completed += 1;
                }
                Poll::Pending => {
                    inner.slots[id as usize] = Some(fut);
                }
            }
        }
    }

    /// Advances the clock to the next timer deadline and wakes every
    /// task sleeping on that instant. Returns `false` (clock untouched)
    /// when no timers are armed. Does not poll anything: callers
    /// interleave [`Self::run_ready`].
    pub fn advance(&self) -> bool {
        let mut inner = self.inner.borrow_mut();
        let Some(at) = inner.timers.peek_time() else {
            return false;
        };
        while inner.timers.peek_time() == Some(at) {
            let (_, id) = inner.timers.next().expect("peeked entry");
            inner.stats.timer_fires += 1;
            inner.wake(id);
        }
        debug_assert!(at >= inner.now, "timer wheel went backwards");
        inner.now = at;
        true
    }

    /// Host-clocked mode: fires every timer due at or before `t`
    /// (instant by instant, draining the ready set between instants)
    /// and then pins the clock to `t`. A host simulation calls this
    /// after each of its own events so `await`ed sleeps and the host
    /// clock agree.
    pub fn advance_to(&self, t: SimTime) {
        loop {
            let due = {
                let mut inner = self.inner.borrow_mut();
                inner.timers.peek_time().filter(|at| *at <= t)
            };
            if due.is_none() {
                break;
            }
            self.advance();
            self.run_ready();
        }
        let mut inner = self.inner.borrow_mut();
        if t > inner.now {
            inner.now = t;
        }
    }

    /// Self-clocked mode: runs until every task either completed or is
    /// blocked on something no timer will ever wake. Returns the number
    /// of tasks still pending (0 means the run drained fully).
    pub fn run(&self) -> usize {
        self.run_ready();
        while self.advance() {
            self.run_ready();
        }
        self.pending_tasks()
    }

    /// A one-shot gate bound to this executor.
    pub fn gate(&self) -> Gate {
        Gate {
            state: Rc::new(RefCell::new(GateState {
                open: false,
                waiters: Vec::new(),
                exec: Rc::downgrade(&self.inner),
            })),
        }
    }

    /// A cancellation token bound to this executor.
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken {
            state: Rc::new(RefCell::new(CancelState {
                cancelled: false,
                waiters: Vec::new(),
                exec: Rc::downgrade(&self.inner),
            })),
        }
    }

    /// A multi-round broadcast notifier bound to this executor.
    pub fn notifier(&self) -> Notifier {
        Notifier {
            state: Rc::new(RefCell::new(NotifyState {
                epoch: 0,
                waiters: Vec::new(),
                exec: Rc::downgrade(&self.inner),
            })),
        }
    }

    /// A FIFO async slot pool (counting semaphore) bound to this
    /// executor, with `permits` concurrent slots.
    pub fn slots(&self, permits: usize) -> Slots {
        Slots {
            state: Rc::new(RefCell::new(SlotState {
                free: permits,
                queue: VecDeque::new(),
                exec: Rc::downgrade(&self.inner),
            })),
        }
    }
}

// ---------------------------------------------------------------------
// Sleep
// ---------------------------------------------------------------------

/// A timer future created by [`AsyncExecutor::sleep`] /
/// [`AsyncExecutor::sleep_until`]. Dropping it before the deadline
/// cancels the underlying timer entry.
#[derive(Debug)]
pub struct Sleep {
    exec: Weak<RefCell<Inner>>,
    at: SimTime,
    token: Option<EventToken>,
    fired: bool,
}

impl Future for Sleep {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let inner = self.exec.upgrade().expect("executor dropped mid-sleep");
        let mut inner = inner.borrow_mut();
        if inner.now >= self.at {
            self.fired = true;
            return Poll::Ready(());
        }
        if self.token.is_none() {
            let id = inner.current_task();
            let token = inner.timers.schedule_at(self.at, id);
            self.token = Some(token);
        }
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if self.fired {
            return;
        }
        if let (Some(token), Some(inner)) = (self.token, self.exec.upgrade()) {
            inner.borrow_mut().timers.cancel(token);
        }
    }
}

// ---------------------------------------------------------------------
// JoinHandle
// ---------------------------------------------------------------------

struct JoinState<T> {
    result: Option<T>,
    taken: bool,
    waiters: Vec<u64>,
    exec: Weak<RefCell<Inner>>,
}

/// Owns the result of a spawned task. Await it (from another task) to
/// join; or poll [`Self::try_take`] from outside the executor — the
/// pattern reactor loops use to collect a driver task's output.
pub struct JoinHandle<T> {
    id: TaskId,
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> JoinHandle<T> {
    /// The spawned task's id (its deterministic spawn sequence).
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// True once the task ran to completion (whether or not the result
    /// was taken).
    pub fn is_done(&self) -> bool {
        let st = self.state.borrow();
        st.taken || st.result.is_some()
    }

    /// Takes the task's result if it completed and the result was not
    /// already taken.
    pub fn try_take(&self) -> Option<T> {
        let mut st = self.state.borrow_mut();
        let out = st.result.take();
        if out.is_some() {
            st.taken = true;
        }
        out
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("id", &self.id)
            .field("done", &self.is_done())
            .finish()
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(out) = st.result.take() {
            st.taken = true;
            return Poll::Ready(out);
        }
        assert!(!st.taken, "task result already taken");
        let exec = st.exec.upgrade().expect("executor dropped mid-join");
        let id = exec.borrow().current_task();
        if !st.waiters.contains(&id) {
            st.waiters.push(id);
        }
        Poll::Pending
    }
}

/// Awaits every handle in order and collects the results. The handles
/// run concurrently as spawned tasks; this only sequences collection.
pub async fn join_all<T: 'static>(handles: Vec<JoinHandle<T>>) -> Vec<T> {
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

// ---------------------------------------------------------------------
// Gate (one-shot event)
// ---------------------------------------------------------------------

struct GateState {
    open: bool,
    waiters: Vec<u64>,
    exec: Weak<RefCell<Inner>>,
}

/// A one-shot event: any number of tasks [`Gate::wait`] until some
/// other code (a task or the host reactor) calls [`Gate::open`]. Once
/// open it stays open. Clones share the same state.
#[derive(Clone)]
pub struct Gate {
    state: Rc<RefCell<GateState>>,
}

impl std::fmt::Debug for Gate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gate")
            .field("open", &self.is_open())
            .finish()
    }
}

impl Gate {
    /// True once [`Self::open`] was called.
    pub fn is_open(&self) -> bool {
        self.state.borrow().open
    }

    /// Opens the gate, waking every waiter (idempotent).
    pub fn open(&self) {
        let (exec, waiters) = {
            let mut st = self.state.borrow_mut();
            if st.open {
                return;
            }
            st.open = true;
            (st.exec.clone(), std::mem::take(&mut st.waiters))
        };
        wake_all(&exec, waiters);
    }

    /// A future that resolves once the gate is open.
    pub fn wait(&self) -> GateWait {
        GateWait {
            state: self.state.clone(),
            registered: false,
        }
    }
}

/// Future returned by [`Gate::wait`].
#[derive(Debug)]
pub struct GateWait {
    state: Rc<RefCell<GateState>>,
    registered: bool,
}

impl std::fmt::Debug for GateState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GateState").field("open", &self.open).finish()
    }
}

impl Future for GateWait {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut st = this.state.borrow_mut();
        if st.open {
            return Poll::Ready(());
        }
        if !this.registered {
            let exec = st.exec.upgrade().expect("executor dropped mid-wait");
            let id = exec.borrow().current_task();
            st.waiters.push(id);
            this.registered = true;
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------
// CancelToken
// ---------------------------------------------------------------------

struct CancelState {
    cancelled: bool,
    waiters: Vec<u64>,
    exec: Weak<RefCell<Inner>>,
}

/// A cooperative cancellation signal: any number of tasks await
/// [`CancelToken::cancelled`] (typically inside a [`race`] against
/// their real work) until some other code calls
/// [`CancelToken::cancel`]. Once cancelled it stays cancelled. Clones
/// share the same state, so the orchestrator keeps one clone and the
/// spawned loop keeps another.
///
/// ```
/// use simkernel::{race, AsyncExecutor, Either, SimDuration};
///
/// let exec = AsyncExecutor::new();
/// let token = exec.cancel_token();
/// let exec2 = exec.clone();
/// let t2 = token.clone();
/// let loser = exec.spawn(async move {
///     match race(exec2.sleep(SimDuration::from_secs(60)), t2.cancelled()).await {
///         Either::Left(()) => "timer won",
///         Either::Right(()) => "cancelled",
///     }
/// });
/// exec.run_ready();
/// token.cancel();
/// exec.run_ready();
/// assert_eq!(loser.try_take(), Some("cancelled"));
/// // The pending 60 s sleep was dropped with the race: the clock
/// // never has to advance to it.
/// assert_eq!(exec.now().as_secs_f64(), 0.0);
/// ```
#[derive(Clone)]
pub struct CancelToken {
    state: Rc<RefCell<CancelState>>,
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.is_cancelled())
            .finish()
    }
}

impl CancelToken {
    /// True once [`Self::cancel`] was called.
    pub fn is_cancelled(&self) -> bool {
        self.state.borrow().cancelled
    }

    /// Cancels the token, waking every waiter (idempotent).
    pub fn cancel(&self) {
        let (exec, waiters) = {
            let mut st = self.state.borrow_mut();
            if st.cancelled {
                return;
            }
            st.cancelled = true;
            (st.exec.clone(), std::mem::take(&mut st.waiters))
        };
        wake_all(&exec, waiters);
    }

    /// A future that resolves once the token is cancelled. A loop that
    /// should die silently can park on this forever.
    pub fn cancelled(&self) -> Cancelled {
        Cancelled {
            state: self.state.clone(),
            registered: false,
        }
    }
}

/// Future returned by [`CancelToken::cancelled`].
#[derive(Debug)]
pub struct Cancelled {
    state: Rc<RefCell<CancelState>>,
    registered: bool,
}

impl std::fmt::Debug for CancelState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelState")
            .field("cancelled", &self.cancelled)
            .finish()
    }
}

impl Future for Cancelled {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut st = this.state.borrow_mut();
        if st.cancelled {
            return Poll::Ready(());
        }
        if !this.registered {
            let exec = st.exec.upgrade().expect("executor dropped mid-wait");
            let id = exec.borrow().current_task();
            st.waiters.push(id);
            this.registered = true;
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------
// race / timeout
// ---------------------------------------------------------------------

/// The winner of a [`race`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future finished first (or the two tied — the race is
    /// left-biased).
    Left(A),
    /// The second future finished first.
    Right(B),
}

/// Races two futures; the loser is dropped, which cancels any timer or
/// queue position it held. Deterministically **left-biased**: when both
/// are ready at the same poll, `a` wins.
///
/// ```
/// use simkernel::{race, AsyncExecutor, Either, SimDuration};
///
/// let exec = AsyncExecutor::new();
/// let exec2 = exec.clone();
/// let h = exec.spawn(async move {
///     let quick = exec2.sleep(SimDuration::from_secs(1));
///     let slow = exec2.sleep(SimDuration::from_secs(10));
///     race(quick, slow).await
/// });
/// exec.run();
/// assert!(matches!(h.try_take(), Some(Either::Left(()))));
/// assert_eq!(exec.now().as_secs_f64(), 1.0);
/// ```
pub fn race<A: Future, B: Future>(a: A, b: B) -> Race<A, B> {
    Race {
        a: Box::pin(a),
        b: Box::pin(b),
    }
}

/// Future returned by [`race`].
pub struct Race<A: Future, B: Future> {
    a: Pin<Box<A>>,
    b: Pin<Box<B>>,
}

impl<A: Future, B: Future> std::fmt::Debug for Race<A, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Race").finish()
    }
}

impl<A: Future, B: Future> Future for Race<A, B> {
    type Output = Either<A::Output, B::Output>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        if let Poll::Ready(out) = self.a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(out));
        }
        if let Poll::Ready(out) = self.b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(out));
        }
        Poll::Pending
    }
}

/// Runs `fut` with a deadline `dur` from now: `Some(output)` if it
/// finishes in time, `None` if the timer fires first. Built on [`race`]
/// with the payload future on the left, so a future that completes
/// exactly at the deadline still wins.
///
/// ```
/// use simkernel::{timeout, AsyncExecutor, SimDuration};
///
/// let exec = AsyncExecutor::new();
/// let exec2 = exec.clone();
/// let h = exec.spawn(async move {
///     let fast = timeout(&exec2, SimDuration::from_secs(5), exec2.sleep(SimDuration::from_secs(1))).await;
///     let slow = timeout(&exec2, SimDuration::from_secs(5), exec2.sleep(SimDuration::from_secs(100))).await;
///     (fast, slow)
/// });
/// exec.run();
/// assert_eq!(h.try_take(), Some((Some(()), None)));
/// // 1 s for the fast await plus the 5 s deadline of the slow one.
/// assert_eq!(exec.now().as_secs_f64(), 6.0);
/// ```
pub fn timeout<F: Future>(
    exec: &AsyncExecutor,
    dur: SimDuration,
    fut: F,
) -> impl Future<Output = Option<F::Output>> {
    let deadline = exec.sleep(dur);
    async move {
        match race(fut, deadline).await {
            Either::Left(out) => Some(out),
            Either::Right(()) => None,
        }
    }
}

// ---------------------------------------------------------------------
// Notifier (multi-round broadcast)
// ---------------------------------------------------------------------

struct NotifyState {
    epoch: u64,
    waiters: Vec<u64>,
    exec: Weak<RefCell<Inner>>,
}

/// A multi-round broadcast: [`Notifier::notified`] resolves at the
/// next [`Notifier::notify_all`] after the future was created. Host
/// reactors use one as the per-event "epoch" signal that re-runs every
/// waiting scheduler task in spawn order. Clones share the same state.
#[derive(Clone)]
pub struct Notifier {
    state: Rc<RefCell<NotifyState>>,
}

impl std::fmt::Debug for Notifier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notifier")
            .field("epoch", &self.state.borrow().epoch)
            .finish()
    }
}

impl Notifier {
    /// Wakes every currently waiting task and advances the epoch.
    pub fn notify_all(&self) {
        let (exec, waiters) = {
            let mut st = self.state.borrow_mut();
            st.epoch += 1;
            (st.exec.clone(), std::mem::take(&mut st.waiters))
        };
        wake_all(&exec, waiters);
    }

    /// A future resolving at the next [`Self::notify_all`].
    pub fn notified(&self) -> Notified {
        Notified {
            state: self.state.clone(),
            start_epoch: self.state.borrow().epoch,
            registered: false,
        }
    }
}

/// Future returned by [`Notifier::notified`].
pub struct Notified {
    state: Rc<RefCell<NotifyState>>,
    start_epoch: u64,
    registered: bool,
}

impl std::fmt::Debug for Notified {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Notified")
            .field("start_epoch", &self.start_epoch)
            .finish()
    }
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        let this = &mut *self;
        let mut st = this.state.borrow_mut();
        if st.epoch > this.start_epoch {
            return Poll::Ready(());
        }
        if !this.registered {
            let exec = st.exec.upgrade().expect("executor dropped mid-wait");
            let id = exec.borrow().current_task();
            st.waiters.push(id);
            this.registered = true;
        }
        Poll::Pending
    }
}

// ---------------------------------------------------------------------
// Slots (FIFO counting semaphore)
// ---------------------------------------------------------------------

struct SlotState {
    free: usize,
    /// Waiting tasks, strictly FIFO — no barging: a new acquirer queues
    /// behind existing waiters even when a permit is free.
    queue: VecDeque<u64>,
    exec: Weak<RefCell<Inner>>,
}

/// A FIFO async slot pool: the `await`-side twin of
/// [`crate::SlotPool`]. `acquire_slot().await` suspends until a permit
/// is free *and* every earlier waiter was served. Clones share the
/// same permits.
#[derive(Clone)]
pub struct Slots {
    state: Rc<RefCell<SlotState>>,
}

impl std::fmt::Debug for Slots {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.state.borrow();
        f.debug_struct("Slots")
            .field("free", &st.free)
            .field("waiting", &st.queue.len())
            .finish()
    }
}

impl Slots {
    /// Currently free permits.
    pub fn free(&self) -> usize {
        self.state.borrow().free
    }

    /// A future resolving to a held slot ([`SlotGuard`]), FIFO-fair.
    pub fn acquire_slot(&self) -> AcquireSlot {
        AcquireSlot {
            state: self.state.clone(),
            queued: None,
        }
    }
}

/// Future returned by [`Slots::acquire_slot`]. Dropping it while
/// queued relinquishes the queue position.
pub struct AcquireSlot {
    state: Rc<RefCell<SlotState>>,
    queued: Option<u64>,
}

impl std::fmt::Debug for AcquireSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AcquireSlot")
            .field("queued", &self.queued)
            .finish()
    }
}

impl Future for AcquireSlot {
    type Output = SlotGuard;

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<SlotGuard> {
        let mut st = self.state.borrow_mut();
        match self.queued {
            None => {
                if st.free > 0 && st.queue.is_empty() {
                    st.free -= 1;
                    return Poll::Ready(SlotGuard {
                        state: self.state.clone(),
                    });
                }
                let exec = st.exec.upgrade().expect("executor dropped mid-acquire");
                let id = exec.borrow().current_task();
                st.queue.push_back(id);
                drop(st);
                self.queued = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if st.free > 0 && st.queue.front() == Some(&id) {
                    st.queue.pop_front();
                    st.free -= 1;
                    drop(st);
                    self.queued = None;
                    return Poll::Ready(SlotGuard {
                        state: self.state.clone(),
                    });
                }
                Poll::Pending
            }
        }
    }
}

impl Drop for AcquireSlot {
    fn drop(&mut self) {
        let Some(id) = self.queued else { return };
        let mut st = self.state.borrow_mut();
        if let Some(pos) = st.queue.iter().position(|q| *q == id) {
            st.queue.remove(pos);
        }
        // If permits are free and someone else now heads the queue,
        // hand the wake over so the pool cannot stall.
        if st.free > 0 {
            if let Some(&next) = st.queue.front() {
                let exec = st.exec.clone();
                drop(st);
                wake_all(&exec, [next]);
            }
        }
    }
}

/// A held slot; dropping it releases the permit and wakes the next
/// FIFO waiter.
pub struct SlotGuard {
    state: Rc<RefCell<SlotState>>,
}

impl std::fmt::Debug for SlotGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlotGuard").finish()
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        let (exec, next) = {
            let mut st = self.state.borrow_mut();
            st.free += 1;
            (st.exec.clone(), st.queue.front().copied())
        };
        if let Some(next) = next {
            wake_all(&exec, [next]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Shared event log for ordering assertions.
    fn log<T>() -> Rc<RefCell<Vec<T>>> {
        Rc::new(RefCell::new(Vec::new()))
    }

    #[test]
    fn same_instant_wakes_run_in_spawn_order() {
        let exec = AsyncExecutor::new();
        let events = log();
        // Spawn in reverse-delay order; all three sleep to the SAME
        // deadline. Wakeup order must be spawn order, not timer
        // insertion order.
        for i in 0..3 {
            let exec2 = exec.clone();
            let ev = events.clone();
            exec.spawn(async move {
                exec2.sleep_until(SimTime::from_secs_f64(1.0)).await;
                ev.borrow_mut().push(format!("t{i}"));
            });
        }
        assert_eq!(exec.run(), 0);
        assert_eq!(*events.borrow(), vec!["t0", "t1", "t2"]);
    }

    #[test]
    fn timers_order_by_deadline_then_spawn_seq() {
        let exec = AsyncExecutor::new();
        let events = log();
        let delays = [2.0, 1.0, 2.0, 1.0];
        for (i, d) in delays.into_iter().enumerate() {
            let exec2 = exec.clone();
            let ev = events.clone();
            exec.spawn(async move {
                exec2.sleep(SimDuration::from_secs_f64(d)).await;
                ev.borrow_mut().push(i);
            });
        }
        exec.run();
        assert_eq!(*events.borrow(), vec![1, 3, 0, 2]);
        assert_eq!(exec.now().as_secs_f64(), 2.0);
    }

    #[test]
    fn join_handle_passes_results_and_wakes_joiners() {
        let exec = AsyncExecutor::new();
        let exec2 = exec.clone();
        let worker = exec.spawn(async move {
            exec2.sleep(SimDuration::from_secs(5)).await;
            42u64
        });
        let joined = exec.spawn(async move { worker.await * 2 });
        exec.run();
        assert_eq!(joined.try_take(), Some(84));
    }

    #[test]
    fn join_all_collects_in_handle_order() {
        let exec = AsyncExecutor::new();
        let handles: Vec<_> = (0..5u64)
            .map(|i| {
                let exec2 = exec.clone();
                exec.spawn(async move {
                    // Later tasks finish earlier; collection order must
                    // still be handle order.
                    exec2.sleep(SimDuration::from_secs(10 - i)).await;
                    i
                })
            })
            .collect();
        let all = exec.spawn(join_all(handles));
        exec.run();
        assert_eq!(all.try_take(), Some(vec![0, 1, 2, 3, 4]));
    }

    #[test]
    fn join_of_already_completed_task_is_immediate() {
        let exec = AsyncExecutor::new();
        let h = exec.spawn(async { 7u32 });
        exec.run_ready();
        assert!(h.is_done());
        let j = exec.spawn(async move { h.await + 1 });
        exec.run_ready();
        assert_eq!(j.try_take(), Some(8));
    }

    #[test]
    fn gate_wakes_all_waiters_in_spawn_order() {
        let exec = AsyncExecutor::new();
        let gate = exec.gate();
        let events = log();
        for i in 0..3 {
            let g = gate.clone();
            let ev = events.clone();
            exec.spawn(async move {
                g.wait().await;
                ev.borrow_mut().push(i);
            });
        }
        exec.run_ready();
        assert!(events.borrow().is_empty());
        gate.open();
        exec.run_ready();
        assert_eq!(*events.borrow(), vec![0, 1, 2]);
        // Late waiters pass straight through an open gate.
        let late = exec.spawn({
            let g = gate.clone();
            async move {
                g.wait().await;
                99
            }
        });
        exec.run_ready();
        assert_eq!(late.try_take(), Some(99));
    }

    #[test]
    fn notifier_is_per_epoch() {
        let exec = AsyncExecutor::new();
        let n = exec.notifier();
        let count = Rc::new(RefCell::new(0));
        let c = count.clone();
        let n2 = n.clone();
        exec.spawn(async move {
            for _ in 0..3 {
                n2.notified().await;
                *c.borrow_mut() += 1;
            }
        });
        exec.run_ready();
        assert_eq!(*count.borrow(), 0);
        for round in 1..=3 {
            n.notify_all();
            exec.run_ready();
            assert_eq!(*count.borrow(), round);
        }
        // Extra notifies with nobody waiting are harmless.
        n.notify_all();
        exec.run_ready();
        assert_eq!(*count.borrow(), 3);
    }

    #[test]
    fn slots_are_fifo_fair() {
        let exec = AsyncExecutor::new();
        let slots = exec.slots(1);
        let events = log();
        for i in 0..3 {
            let exec2 = exec.clone();
            let s = slots.clone();
            let ev = events.clone();
            exec.spawn(async move {
                let guard = s.acquire_slot().await;
                ev.borrow_mut().push(format!("acq{i}"));
                exec2.sleep(SimDuration::from_secs(1)).await;
                drop(guard);
            });
        }
        exec.run();
        assert_eq!(*events.borrow(), vec!["acq0", "acq1", "acq2"]);
        assert_eq!(exec.now().as_secs_f64(), 3.0);
        assert_eq!(slots.free(), 1);
    }

    #[test]
    fn slots_no_barging_past_the_queue() {
        let exec = AsyncExecutor::new();
        let slots = exec.slots(1);
        let events = log();
        // Task 0 holds the slot until t=2. Task 1 queues at t=0. Task 2
        // tries at t=1 (while a permit is NOT free) and must queue
        // behind task 1 even though it polls again right at handoff.
        for (i, (start, hold)) in [(0.0, 2.0), (0.0, 1.0), (1.0, 1.0)].into_iter().enumerate() {
            let exec2 = exec.clone();
            let s = slots.clone();
            let ev = events.clone();
            exec.spawn(async move {
                exec2.sleep(SimDuration::from_secs_f64(start)).await;
                let guard = s.acquire_slot().await;
                ev.borrow_mut().push(format!("acq{i}"));
                exec2.sleep(SimDuration::from_secs_f64(hold)).await;
                drop(guard);
            });
        }
        exec.run();
        assert_eq!(*events.borrow(), vec!["acq0", "acq1", "acq2"]);
    }

    #[test]
    fn dropped_acquire_leaves_the_queue() {
        let exec = AsyncExecutor::new();
        let slots = exec.slots(1);
        let held = exec.spawn({
            let s = slots.clone();
            let exec2 = exec.clone();
            async move {
                let g = s.acquire_slot().await;
                exec2.sleep(SimDuration::from_secs(2)).await;
                drop(g);
            }
        });
        // This waiter gives up (drops its acquire) at t=1.
        let quitter = exec.spawn({
            let s = slots.clone();
            let exec2 = exec.clone();
            async move {
                let acq = s.acquire_slot();
                let sleep = exec2.sleep(SimDuration::from_secs(1));
                // Poll the acquire once to enqueue, then abandon it.
                let mut acq = Box::pin(acq);
                let _ = futures_poll_once(&mut acq);
                sleep.await;
                drop(acq);
            }
        });
        let last = exec.spawn({
            let s = slots.clone();
            async move {
                let _g = s.acquire_slot().await;
                "got it"
            }
        });
        exec.run();
        assert!(held.is_done() && quitter.is_done());
        assert_eq!(last.try_take(), Some("got it"));
    }

    /// Polls a future once with a no-op waker (test helper).
    fn futures_poll_once<F: Future + Unpin>(fut: &mut F) -> Poll<F::Output> {
        let mut cx = Context::from_waker(Waker::noop());
        Pin::new(fut).poll(&mut cx)
    }

    #[test]
    fn sleep_drop_cancels_timer() {
        let exec = AsyncExecutor::new();
        let exec2 = exec.clone();
        exec.spawn(async move {
            let long = exec2.sleep(SimDuration::from_secs(100));
            let short = exec2.sleep(SimDuration::from_secs(1));
            short.await;
            drop(long);
        });
        exec.run();
        // The cancelled 100 s timer must not drag the clock forward.
        assert_eq!(exec.now().as_secs_f64(), 1.0);
    }

    #[test]
    fn host_clocked_advance_to_fires_due_timers() {
        let exec = AsyncExecutor::new();
        let events = log();
        for d in [1.0, 2.0, 5.0] {
            let exec2 = exec.clone();
            let ev = events.clone();
            exec.spawn(async move {
                exec2.sleep(SimDuration::from_secs_f64(d)).await;
                ev.borrow_mut().push(format!("{d}"));
            });
        }
        exec.run_ready();
        exec.advance_to(SimTime::from_secs_f64(3.0));
        assert_eq!(*events.borrow(), vec!["1", "2"]);
        assert_eq!(exec.now().as_secs_f64(), 3.0);
        exec.advance_to(SimTime::from_secs_f64(10.0));
        assert_eq!(*events.borrow(), vec!["1", "2", "5"]);
        assert_eq!(exec.now().as_secs_f64(), 10.0);
    }

    #[test]
    fn spawn_inside_a_task_joins_the_same_drain() {
        let exec = AsyncExecutor::new();
        let events = log();
        let exec2 = exec.clone();
        let ev = events.clone();
        exec.spawn(async move {
            ev.borrow_mut().push("parent");
            let ev2 = ev.clone();
            let child = exec2.spawn(async move {
                ev2.borrow_mut().push("child");
                5u8
            });
            assert_eq!(child.await, 5);
            ev.borrow_mut().push("joined");
        });
        assert_eq!(exec.run(), 0);
        assert_eq!(*events.borrow(), vec!["parent", "child", "joined"]);
    }

    #[test]
    fn stats_count_activity() {
        let exec = AsyncExecutor::new();
        let exec2 = exec.clone();
        exec.spawn(async move {
            exec2.sleep(SimDuration::from_secs(1)).await;
        });
        exec.spawn(async {});
        exec.run();
        let stats = exec.stats();
        assert_eq!(stats.spawned, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.timer_fires, 1);
        assert!(stats.polls >= 3);
        assert_eq!(exec.pending_tasks(), 0);
    }

    #[test]
    fn run_reports_stuck_tasks() {
        let exec = AsyncExecutor::new();
        let gate = exec.gate();
        exec.spawn({
            let g = gate.clone();
            async move { g.wait().await }
        });
        // Nothing will ever open the gate: run() returns 1 pending.
        assert_eq!(exec.run(), 1);
    }

    #[test]
    fn cancel_token_wakes_every_waiter_once() {
        let exec = AsyncExecutor::new();
        let token = exec.cancel_token();
        let events = log();
        for i in 0..3 {
            let t = token.clone();
            let ev = events.clone();
            exec.spawn(async move {
                t.cancelled().await;
                ev.borrow_mut().push(i);
            });
        }
        exec.run_ready();
        assert!(events.borrow().is_empty());
        assert!(!token.is_cancelled());
        token.cancel();
        token.cancel(); // idempotent
        exec.run_ready();
        assert_eq!(*events.borrow(), vec![0, 1, 2]);
        // A late waiter passes straight through.
        let late = exec.spawn({
            let t = token.clone();
            async move { t.cancelled().await }
        });
        exec.run_ready();
        assert!(late.is_done());
    }

    #[test]
    fn cancelling_a_raced_sleep_drops_its_timer() {
        // Satellite coverage: a loop parked on race(sleep, cancelled)
        // that is cancelled mid-sleep must drop the pending timer so
        // the clock never advances to the abandoned deadline.
        let exec = AsyncExecutor::new();
        let token = exec.cancel_token();
        let exec2 = exec.clone();
        let t2 = token.clone();
        let h = exec.spawn(async move {
            match race(exec2.sleep(SimDuration::from_secs(1_000)), t2.cancelled()).await {
                Either::Left(()) => "slept",
                Either::Right(()) => "cancelled",
            }
        });
        exec.run_ready();
        token.cancel();
        exec.run_ready();
        assert_eq!(h.try_take(), Some("cancelled"));
        assert_eq!(exec.now(), SimTime::ZERO);
        // Self-clocked run has nothing left: the 1000 s timer is gone.
        assert_eq!(exec.run(), 0);
        assert_eq!(exec.now(), SimTime::ZERO);
    }

    #[test]
    fn race_is_left_biased_on_ties() {
        let exec = AsyncExecutor::new();
        let exec2 = exec.clone();
        let h = exec.spawn(async move {
            race(
                exec2.sleep(SimDuration::from_secs(3)),
                exec2.sleep(SimDuration::from_secs(3)),
            )
            .await
        });
        exec.run();
        assert!(matches!(h.try_take(), Some(Either::Left(()))));
    }

    #[test]
    fn timeout_racing_a_gate() {
        // Satellite coverage: a timeout around Gate::wait resolves to
        // Some(()) when the gate opens in time and None when it does
        // not — and the expired wait deregisters cleanly.
        let exec = AsyncExecutor::new();
        let opened = exec.gate();
        let never = exec.gate();
        let exec2 = exec.clone();
        let g1 = opened.clone();
        let g2 = never.clone();
        let h = exec.spawn(async move {
            let won = timeout(&exec2, SimDuration::from_secs(10), g1.wait()).await;
            let lost = timeout(&exec2, SimDuration::from_secs(10), g2.wait()).await;
            (won, lost)
        });
        exec.run_ready();
        exec.advance_to(SimTime::from_secs_f64(4.0));
        opened.open();
        exec.run_ready();
        exec.advance_to(SimTime::from_secs_f64(20.0));
        assert_eq!(h.try_take(), Some((Some(()), None)));
        // Opening the dead gate later must not wake anything.
        never.open();
        exec.run_ready();
        assert_eq!(exec.pending_tasks(), 0);
    }

    #[test]
    fn timeout_returns_payload_on_deadline_tie() {
        let exec = AsyncExecutor::new();
        let exec2 = exec.clone();
        let h = exec.spawn(async move {
            timeout(
                &exec2,
                SimDuration::from_secs(5),
                exec2.sleep(SimDuration::from_secs(5)),
            )
            .await
        });
        exec.run();
        assert_eq!(h.try_take(), Some(Some(())));
    }

    #[test]
    fn identical_runs_produce_identical_event_orders() {
        let run_once = || {
            let exec = AsyncExecutor::new();
            let events = log();
            let mut rng = crate::SimRng::seed_from(0xFEED);
            for i in 0..50u64 {
                let d = rng.uniform_u64(1, 10);
                let exec2 = exec.clone();
                let ev = events.clone();
                exec.spawn(async move {
                    exec2.sleep(SimDuration::from_secs(d)).await;
                    ev.borrow_mut().push((i, exec2.now().as_micros()));
                });
            }
            exec.run();
            let out = events.borrow().clone();
            out
        };
        assert_eq!(run_once(), run_once());
    }
}
