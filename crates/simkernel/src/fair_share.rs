//! Max-min style bandwidth sharing for contended links.
//!
//! [`FairShare`] models a shared transfer medium — the aggregate throughput
//! of an object-storage service, a VM NIC, the memory bus of a host — as a
//! set of concurrent flows that split capacity. Each flow's instantaneous
//! rate is
//!
//! ```text
//! rate(f) = min(per_flow_cap, aggregate_cap / n_active, group_cap(f) / n_group(f))
//! ```
//!
//! which is a *conservative* approximation of true max-min fairness:
//! capacity left unused by flows bottlenecked elsewhere is not
//! redistributed. This errs towards slower transfers under contention,
//! which is the effect the paper's storage-saturation argument rests on.
//!
//! The pool does not own an event queue. Drivers integrate it with three
//! calls: [`FairShare::start`]/[`FairShare::advance`] whenever membership
//! changes, and [`FairShare::next_completion`] to know when to look again.

use std::collections::HashMap;

use crate::time::{SimDuration, SimTime};

/// Identifies an in-flight transfer within one [`FairShare`] pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(u64);

/// Remaining bytes below this threshold count as "done"; guards against
/// float residue when progress is integrated in pieces.
const DONE_EPSILON_BYTES: f64 = 1e-3;

#[derive(Debug, Clone)]
struct Flow {
    remaining: f64,
    groups: Vec<u64>,
}

#[derive(Debug, Clone, Default)]
struct Group {
    cap_bps: f64,
    active: usize,
}

/// A fair-share bandwidth pool. See the [module docs](self) for the model.
///
/// # Example
///
/// ```
/// use simkernel::{FairShare, SimTime};
///
/// // 100 B/s aggregate, 80 B/s per flow.
/// let mut pool = FairShare::new(100.0, 80.0);
/// let t0 = SimTime::ZERO;
/// pool.start(t0, 80, &[]); // alone: runs at 80 B/s -> 1 s
/// assert_eq!(pool.next_completion().unwrap().as_secs_f64(), 1.0);
/// ```
#[derive(Debug)]
pub struct FairShare {
    aggregate_bps: f64,
    per_flow_bps: f64,
    flows: HashMap<FlowId, Flow>,
    groups: HashMap<u64, Group>,
    last_update: SimTime,
    next_id: u64,
    /// Total bytes that have finished transferring through this pool.
    completed_bytes: f64,
}

impl FairShare {
    /// Creates a pool with the given aggregate and per-flow caps in
    /// bytes/second. The aggregate cap may be `f64::INFINITY` for an
    /// uncontended medium; the per-flow cap must be finite.
    ///
    /// # Panics
    ///
    /// Panics if `per_flow_bps` is not finite and positive, or if
    /// `aggregate_bps` is not positive.
    pub fn new(aggregate_bps: f64, per_flow_bps: f64) -> Self {
        assert!(
            per_flow_bps.is_finite() && per_flow_bps > 0.0,
            "per-flow cap must be finite and positive"
        );
        assert!(aggregate_bps > 0.0, "aggregate cap must be positive");
        FairShare {
            aggregate_bps,
            per_flow_bps,
            flows: HashMap::new(),
            groups: HashMap::new(),
            last_update: SimTime::ZERO,
            next_id: 0,
            completed_bytes: 0.0,
        }
    }

    /// Declares (or updates) the capacity of a flow group, typically one
    /// host's NIC.
    ///
    /// # Panics
    ///
    /// Panics if `cap_bps` is not positive.
    pub fn set_group_cap(&mut self, group: u64, cap_bps: f64) {
        assert!(cap_bps > 0.0, "group cap must be positive");
        self.groups.entry(group).or_default().cap_bps = cap_bps;
    }

    /// Starts a transfer of `bytes` at time `now`, constrained by zero or
    /// more group caps (e.g. the host's NIC and the storage key prefix).
    /// Progress of all existing flows is brought up to `now` first; call
    /// [`Self::advance`] *before* `start` if you need the completions
    /// that may occur at the same instant.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update, or if a group was never
    /// declared via [`Self::set_group_cap`].
    pub fn start(&mut self, now: SimTime, bytes: u64, groups: &[u64]) -> FlowId {
        self.progress_to(now);
        for &g in groups {
            let entry = self
                .groups
                .get_mut(&g)
                .expect("flow group must be declared before use");
            entry.active += 1;
        }
        let id = FlowId(self.next_id);
        self.next_id += 1;
        self.flows.insert(
            id,
            Flow {
                remaining: bytes as f64,
                groups: groups.to_vec(),
            },
        );
        id
    }

    /// Whether a group has been declared.
    pub fn has_group(&self, group: u64) -> bool {
        self.groups.contains_key(&group)
    }

    /// Advances all flows to `now` and returns the flows that completed,
    /// in deterministic (FlowId) order.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the last update.
    pub fn advance(&mut self, now: SimTime) -> Vec<FlowId> {
        self.progress_to(now);
        let mut done: Vec<FlowId> = self
            .flows
            .iter()
            .filter(|(_, f)| f.remaining <= DONE_EPSILON_BYTES)
            .map(|(id, _)| *id)
            .collect();
        done.sort_unstable();
        for id in &done {
            self.remove(*id);
        }
        done
    }

    /// Aborts an in-flight transfer. No-op if the flow already completed.
    pub fn cancel(&mut self, now: SimTime, id: FlowId) {
        self.progress_to(now);
        self.remove(id);
    }

    /// The earliest instant at which some current flow completes, assuming
    /// membership does not change. `None` when the pool is idle.
    pub fn next_completion(&self) -> Option<SimTime> {
        let min_secs = self
            .flows
            .values()
            .map(|f| f.remaining.max(0.0) / self.rate_of(f))
            .fold(f64::INFINITY, f64::min);
        if min_secs.is_finite() {
            // Round up to the next whole microsecond so the driver's tick
            // never lands strictly before the flow is actually done.
            let micros = (min_secs * 1e6).ceil() as u64;
            Some(self.last_update + SimDuration::from_micros(micros))
        } else {
            None
        }
    }

    /// Number of in-flight transfers.
    pub fn active(&self) -> usize {
        self.flows.len()
    }

    /// Total bytes fully transferred through this pool so far.
    pub fn completed_bytes(&self) -> f64 {
        self.completed_bytes
    }

    /// Instantaneous rate of one flow under the current membership.
    fn rate_of(&self, flow: &Flow) -> f64 {
        let n = self.flows.len().max(1) as f64;
        let mut rate = self.per_flow_bps.min(self.aggregate_bps / n);
        for g in &flow.groups {
            let group = &self.groups[g];
            rate = rate.min(group.cap_bps / group.active.max(1) as f64);
        }
        rate
    }

    fn progress_to(&mut self, now: SimTime) {
        assert!(
            now >= self.last_update,
            "fair-share pool asked to move backwards: {} < {}",
            now,
            self.last_update
        );
        let dt = (now - self.last_update).as_secs_f64();
        self.last_update = now;
        if dt == 0.0 || self.flows.is_empty() {
            return;
        }
        // Rates depend only on membership, which is constant over the
        // interval, so a single linear step is exact.
        let rates: Vec<(FlowId, f64)> = self
            .flows
            .iter()
            .map(|(id, f)| (*id, self.rate_of(f)))
            .collect();
        for (id, rate) in rates {
            let f = self.flows.get_mut(&id).expect("flow disappeared");
            f.remaining = (f.remaining - rate * dt).max(0.0);
        }
    }

    fn remove(&mut self, id: FlowId) {
        if let Some(flow) = self.flows.remove(&id) {
            self.completed_bytes += 0.0f64.max(flow.remaining); // residue is ~0
            for g in &flow.groups {
                let group = self.groups.get_mut(g).expect("group disappeared");
                group.active = group.active.saturating_sub(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    #[test]
    fn single_flow_runs_at_per_flow_cap() {
        let mut pool = FairShare::new(1000.0, 100.0);
        pool.start(t(0.0), 100, &[]);
        assert_eq!(pool.next_completion(), Some(t(1.0)));
        let done = pool.advance(t(1.0));
        assert_eq!(done.len(), 1);
        assert_eq!(pool.active(), 0);
    }

    #[test]
    fn aggregate_cap_splits_between_flows() {
        // Aggregate 100 B/s, per-flow 100 B/s: two flows run at 50 each.
        let mut pool = FairShare::new(100.0, 100.0);
        pool.start(t(0.0), 100, &[]);
        pool.start(t(0.0), 100, &[]);
        assert_eq!(pool.next_completion(), Some(t(2.0)));
        assert_eq!(pool.advance(t(2.0)).len(), 2);
    }

    #[test]
    fn departure_speeds_up_survivors() {
        // Flow A: 50 bytes, flow B: 150 bytes, aggregate 100 B/s.
        let mut pool = FairShare::new(100.0, 100.0);
        pool.start(t(0.0), 50, &[]);
        pool.start(t(0.0), 150, &[]);
        // Both at 50 B/s; A finishes at t=1 with B holding 100 bytes.
        assert_eq!(pool.next_completion(), Some(t(1.0)));
        assert_eq!(pool.advance(t(1.0)).len(), 1);
        // B alone now runs at 100 B/s: 100 bytes -> 1 more second.
        assert_eq!(pool.next_completion(), Some(t(2.0)));
        assert_eq!(pool.advance(t(2.0)).len(), 1);
    }

    #[test]
    fn group_cap_limits_colocated_flows() {
        // Huge aggregate, per-flow 100, but the two flows share a 100 B/s
        // NIC -> 50 each.
        let mut pool = FairShare::new(f64::INFINITY, 100.0);
        pool.set_group_cap(7, 100.0);
        pool.start(t(0.0), 100, &[7]);
        pool.start(t(0.0), 100, &[7]);
        assert_eq!(pool.next_completion(), Some(t(2.0)));
        // A flow on another group is unaffected.
        pool.set_group_cap(8, 1000.0);
        pool.start(t(0.0), 100, &[8]);
        // Third flow runs at min(100, inf/3, 1000/1) = 100 B/s -> 1s.
        assert_eq!(pool.next_completion(), Some(t(1.0)));
    }

    #[test]
    fn cancel_removes_flow_and_frees_share() {
        let mut pool = FairShare::new(100.0, 100.0);
        let a = pool.start(t(0.0), 1_000, &[]);
        pool.start(t(0.0), 100, &[]);
        pool.cancel(t(1.0), a);
        assert_eq!(pool.active(), 1);
        // Survivor had 50 bytes left at t=1, now alone at 100 B/s.
        assert_eq!(pool.next_completion(), Some(t(1.5)));
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let mut pool = FairShare::new(100.0, 100.0);
        pool.start(t(0.0), 0, &[]);
        assert_eq!(pool.advance(t(0.0)).len(), 1);
    }

    #[test]
    fn completion_time_rounds_up() {
        // 1 byte at 3 B/s = 333333.33 micros; must round *up*.
        let mut pool = FairShare::new(100.0, 3.0);
        pool.start(t(0.0), 1, &[]);
        let done_at = pool.next_completion().unwrap();
        assert!(done_at.as_micros() >= 333_334);
        assert_eq!(pool.advance(done_at).len(), 1);
    }

    #[test]
    #[should_panic(expected = "declared before use")]
    fn undeclared_group_panics() {
        let mut pool = FairShare::new(100.0, 100.0);
        pool.start(t(0.0), 10, &[99]);
    }
}
