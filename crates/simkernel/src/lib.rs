//! Deterministic discrete-event simulation kernel.
//!
//! `simkernel` provides the building blocks every other crate in this
//! workspace rests on:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution virtual time
//!   newtypes ([`time`]).
//! * [`EventQueue`] — a cancellable, deterministic event heap ([`engine`]).
//! * [`FairShare`] — a max-min fair bandwidth-sharing pool used to model
//!   contended links such as object-storage aggregate throughput and VM
//!   NICs ([`fair_share`]).
//! * [`SlotPool`] — a FIFO vCPU slot pool used to model compute capacity
//!   ([`slots`]).
//! * [`StepSeries`] — a step-function time series used to record
//!   utilisation traces ([`series`]).
//! * [`SimRng`] — seeded random numbers plus the handful of distributions
//!   the cloud model needs ([`rng`]).
//! * [`AsyncExecutor`] — a deterministic single-threaded async executor
//!   on virtual time, with wakeup order tie-broken on
//!   `(SimTime, spawn_seq)` ([`aio`]).
//!
//! # Example
//!
//! ```
//! use simkernel::{EventQueue, SimDuration};
//!
//! let mut queue: EventQueue<&'static str> = EventQueue::new();
//! queue.schedule_in(SimDuration::from_secs_f64(2.0), "second");
//! queue.schedule_in(SimDuration::from_secs_f64(1.0), "first");
//! let (t1, ev1) = queue.next().expect("event");
//! assert_eq!(ev1, "first");
//! assert_eq!(t1.as_secs_f64(), 1.0);
//! ```

#![warn(missing_docs)]

pub mod aio;
pub mod engine;
pub mod fair_share;
pub mod rng;
pub mod series;
pub mod slots;
pub mod time;

pub use aio::{
    join_all, race, timeout, AsyncExecutor, CancelToken, Either, ExecStats, Gate, JoinHandle,
    Notifier, Slots, TaskId,
};
pub use engine::{EventQueue, EventToken, SchedStats};
pub use fair_share::{FairShare, FlowId};
pub use rng::SimRng;
pub use series::StepSeries;
pub use slots::SlotPool;
pub use time::{SimDuration, SimTime};
