//! Virtual time newtypes.
//!
//! The kernel measures time in whole microseconds. A `u64` microsecond
//! clock gives ~584,000 years of range, is exactly representable, hashes
//! and orders cheaply, and avoids the accumulation error a float clock
//! would introduce in long simulations.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An instant in virtual time, measured in microseconds since the start of
/// the simulation.
///
/// # Example
///
/// ```
/// use simkernel::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs_f64(1.5);
/// assert_eq!(t.as_micros(), 1_500_000);
/// assert_eq!(t.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// # Example
///
/// ```
/// use simkernel::SimDuration;
///
/// let d = SimDuration::from_millis(250) * 4.0;
/// assert_eq!(d.as_secs_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(secs_to_micros(secs))
    }

    /// Returns the time as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the time as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the span from `earlier` to `self`, saturating to zero if
    /// `earlier` is actually later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from (non-negative, finite) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, NaN, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimDuration(secs_to_micros(secs))
    }

    /// Returns the duration as whole microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Returns the duration as floating-point seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

fn secs_to_micros(secs: f64) -> u64 {
    assert!(
        secs.is_finite() && secs >= 0.0,
        "virtual time must be finite and non-negative, got {secs}"
    );
    let micros = secs * 1e6;
    assert!(
        micros <= u64::MAX as f64,
        "virtual time overflow: {secs} seconds"
    );
    // Round to the nearest microsecond so that e.g. 0.1 + 0.2 style float
    // artefacts do not shave an event a tick early.
    micros.round() as u64
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracted a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs_f64(3.25);
        let d = SimDuration::from_millis(750);
        assert_eq!((t + d).as_secs_f64(), 4.0);
        assert_eq!(((t + d) - t), d);
    }

    #[test]
    fn saturating_since_clamps() {
        let a = SimTime::from_secs_f64(1.0);
        let b = SimTime::from_secs_f64(2.0);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_secs(1));
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10);
        assert_eq!((d * 0.5).as_secs_f64(), 5.0);
        assert_eq!((d / 4.0).as_secs_f64(), 2.5);
    }

    #[test]
    fn rounding_is_nearest_microsecond() {
        // 0.1 seconds is not exactly representable in binary; make sure we
        // land on 100_000 micros, not 99_999.
        assert_eq!(SimDuration::from_secs_f64(0.1).as_micros(), 100_000);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panic() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs_f64(1.5).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(20).to_string(), "0.020000s");
    }
}
