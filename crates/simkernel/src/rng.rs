//! Seeded randomness for the simulation.
//!
//! [`SimRng`] is a self-contained xoshiro256++ generator seeded
//! explicitly so every run is reproducible (the build environment has no
//! crates.io access, so no external RNG crate is used), and supplies the
//! few distributions the cloud model needs (uniform, normal via
//! Box-Muller, log-normal, exponential) without pulling in a
//! distributions crate.

use crate::time::SimDuration;

/// A deterministic random number generator for simulation components.
///
/// # Example
///
/// ```
/// use simkernel::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

/// SplitMix64 step, used to expand a 64-bit seed into generator state
/// (the seeding procedure the xoshiro authors recommend).
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derives an independent child generator; used to give each
    /// simulation component its own stream so adding draws in one place
    /// does not perturb another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from(self.next_u64())
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform range must be non-empty");
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform integer draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "uniform range must be non-empty");
        // Debiased multiply-shift (Lemire); rejects at most span/2^64 of
        // draws, so the loop terminates almost immediately.
        let span = hi - lo;
        let threshold = span.wrapping_neg() % span;
        loop {
            let wide = (self.next_u64() as u128) * (span as u128);
            if (wide as u64) >= threshold {
                return lo + (wide >> 64) as u64;
            }
        }
    }

    /// Standard normal draw (Box-Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Draw u1 from (0, 1] to keep ln() finite.
        let u1: f64 = 1.0 - self.next_f64();
        let u2: f64 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal draw with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Normal draw truncated below at `floor`; used for latencies, which
    /// must never be negative.
    pub fn normal_at_least(&mut self, mean: f64, std_dev: f64, floor: f64) -> f64 {
        self.normal(mean, std_dev).max(floor)
    }

    /// Log-normal draw parameterised by the *target* median and a shape
    /// sigma (sigma of the underlying normal).
    pub fn lognormal_median(&mut self, median: f64, sigma: f64) -> f64 {
        assert!(median > 0.0, "log-normal median must be positive");
        (median.ln() + sigma * self.standard_normal()).exp()
    }

    /// Exponential draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        let u: f64 = 1.0 - self.next_f64();
        -mean * u.ln()
    }

    /// A latency helper: normal-at-least-zero converted to a duration.
    pub fn latency(&mut self, mean_secs: f64, std_secs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.normal_at_least(mean_secs, std_secs, 0.0))
    }

    /// Draws an index with probability proportional to its weight;
    /// used for weighted tenant mixes in arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or the weights do not sum to a
    /// positive value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "weighted_index needs a non-empty, positive-sum weight vector"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            target -= w;
            if target < 0.0 {
                return i;
            }
        }
        weights.len() - 1 // float round-off: land on the last bucket
    }

    /// Shuffles a slice in place (Fisher-Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.uniform_u64(0, i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
        }
    }

    #[test]
    fn forked_streams_are_independent_of_later_parent_draws() {
        let mut parent1 = SimRng::seed_from(7);
        let mut child1 = parent1.fork();
        let mut parent2 = SimRng::seed_from(7);
        let mut child2 = parent2.fork();
        // Consume from one parent only; children must still agree.
        let _ = parent1.uniform(0.0, 1.0);
        assert_eq!(child1.uniform(0.0, 1.0), child2.uniform(0.0, 1.0));
    }

    #[test]
    fn normal_moments_are_sane() {
        let mut rng = SimRng::seed_from(123);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| rng.normal(10.0, 2.0)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn normal_at_least_respects_floor() {
        let mut rng = SimRng::seed_from(5);
        for _ in 0..1000 {
            assert!(rng.normal_at_least(0.0, 10.0, 0.25) >= 0.25);
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let mut rng = SimRng::seed_from(9);
        let n = 20_001;
        let mut draws: Vec<f64> = (0..n).map(|_| rng.lognormal_median(3.0, 0.5)).collect();
        draws.sort_by(f64::total_cmp);
        let median = draws[n / 2];
        assert!((median - 3.0).abs() < 0.15, "median {median}");
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = SimRng::seed_from(11);
        let n = 20_000;
        let mean = (0..n).map(|_| rng.exponential(4.0)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean {mean}");
    }

    #[test]
    fn weighted_index_tracks_weights() {
        let mut rng = SimRng::seed_from(17);
        let weights = [1.0, 3.0, 6.0];
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[rng.weighted_index(&weights)] += 1;
        }
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / 10.0;
            let got = counts[i] as f64 / n as f64;
            assert!((got - expected).abs() < 0.02, "bucket {i}: {got} vs {expected}");
        }
    }

    #[test]
    #[should_panic(expected = "positive-sum")]
    fn weighted_index_rejects_zero_weights() {
        SimRng::seed_from(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::seed_from(3);
        let mut items: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut items);
        let mut sorted = items.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(items, (0..50).collect::<Vec<_>>());
    }
}
