//! The async-kernel microbenchmark binary behind `BENCH_kernel.json`.
//!
//! ```text
//! kernel [--seed N] [--git-rev REV] [--out PATH] [--check-against BASELINE] [--tiny]
//! ```
//!
//! Runs the [`bench::kernelbench`] scenarios, prints a human summary,
//! and writes the JSON report to `--out` (default `BENCH_kernel.json`).
//! With `--check-against`, compares against a committed baseline and
//! exits non-zero when any shared scenario's throughput drops more than
//! 20% below it, or when the fleet-replay speedup falls below the 10×
//! floor — that's the CI regression gate.

use std::process::exit;

use bench::kernelbench::{run, KernelBenchConfig, KernelBenchReport};

/// Throughput may regress at most this fraction below the baseline.
const MAX_REGRESSION: f64 = 0.20;
/// The async path must beat the legacy pump model at least this much on
/// the fleet-replay scenario.
const MIN_FLEET_SPEEDUP: f64 = 10.0;

fn die(msg: &str) -> ! {
    eprintln!("kernel: {msg}");
    eprintln!(
        "usage: kernel [--seed N] [--git-rev REV] [--out PATH] \
         [--check-against BASELINE] [--tiny]"
    );
    exit(2);
}

fn main() {
    let mut seed = 42u64;
    let mut git_rev = "unknown".to_owned();
    let mut out = "BENCH_kernel.json".to_owned();
    let mut baseline: Option<String> = None;
    let mut tiny = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => {
                let v = it.next().unwrap_or_else(|| die("--seed needs a value"));
                seed = v.parse().unwrap_or_else(|_| die("--seed needs an integer"));
            }
            "--git-rev" => {
                git_rev = it.next().unwrap_or_else(|| die("--git-rev needs a value"));
            }
            "--out" => {
                out = it.next().unwrap_or_else(|| die("--out needs a path"));
            }
            "--check-against" => {
                baseline = Some(it.next().unwrap_or_else(|| die("--check-against needs a path")));
            }
            "--tiny" => tiny = true,
            other => die(&format!("unknown argument {other:?}")),
        }
    }

    let cfg = if tiny {
        KernelBenchConfig::tiny()
    } else {
        KernelBenchConfig::full()
    };
    let report = run(seed, &git_rev, &cfg);

    println!("async-kernel microbenchmarks (seed {seed}, rev {git_rev})");
    for s in &report.scenarios {
        println!(
            "  {:<28} {:>12} events  {:>9.3} ms  {:>14.0} events/sec",
            s.name,
            s.events,
            s.wall_secs * 1e3,
            s.events_per_sec
        );
    }
    println!(
        "  fleet-replay speedup: {:.1}x (async kernel vs legacy pump loop)",
        report.fleet_replay_speedup
    );
    println!(
        "  monitor-churn speedup: {:.1}x (monitor futures vs legacy poll routing)",
        report.monitor_churn_speedup
    );

    let json = report.to_json();
    if let Err(e) = std::fs::write(&out, &json) {
        die(&format!("cannot write {out}: {e}"));
    }
    println!("wrote {out}");

    let Some(baseline) = baseline else { return };
    let text = std::fs::read_to_string(&baseline)
        .unwrap_or_else(|e| die(&format!("cannot read baseline {baseline}: {e}")));
    let base = KernelBenchReport::parse(&text)
        .unwrap_or_else(|e| die(&format!("bad baseline {baseline}: {e}")));
    let mut failed = false;
    for bs in &base.scenarios {
        let Some(cur) = report.scenario(&bs.name) else {
            eprintln!("kernel: FAIL baseline scenario {:?} missing from this run", bs.name);
            failed = true;
            continue;
        };
        let floor = bs.events_per_sec * (1.0 - MAX_REGRESSION);
        if cur.events_per_sec < floor {
            eprintln!(
                "kernel: FAIL {} regressed: {:.0} events/sec < {:.0} \
                 (baseline {:.0} - 20%)",
                bs.name, cur.events_per_sec, floor, bs.events_per_sec
            );
            failed = true;
        } else {
            println!(
                "  ok {:<28} {:>14.0} events/sec (floor {:.0})",
                bs.name, cur.events_per_sec, floor
            );
        }
    }
    if report.fleet_replay_speedup < MIN_FLEET_SPEEDUP {
        eprintln!(
            "kernel: FAIL fleet-replay speedup {:.1}x below the {MIN_FLEET_SPEEDUP}x floor",
            report.fleet_replay_speedup
        );
        failed = true;
    }
    if failed {
        exit(1);
    }
    println!("kernel bench within baseline");
}
