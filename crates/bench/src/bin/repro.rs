//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation and prints it next to the published numbers.
//!
//! ```text
//! repro [table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|ablations|all] [seed]
//! ```

use std::env;

use bench::{
    ablation_fault_rate, ablation_memory, ablation_prefix_bandwidth, ablation_reuse,
    extension_huge_sort, fig2, fig5,
    table1, table2, table3, table4, Table4Row, FIG4_PAPER_RATIO, FIG5_PAPER_COST_RATIO,
    FIG5_PAPER_SPEEDUP, TABLE1_PAPER, TABLE3_PAPER, TABLE4_PAPER,
};
use telemetry::report::bar_chart;
use telemetry::{PaperRow, Table};

fn main() {
    let args: Vec<String> = env::args().collect();
    let what = args.get(1).map_or("all", String::as_str);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    match what {
        "table1" => run_table1(seed),
        "table2" => run_table2(),
        "table3" => run_table3(seed),
        "table4" => run_table4(seed),
        "fig2" => run_fig2(seed),
        "fig3" => run_fig3(seed),
        "fig4" => run_fig4(seed),
        "fig5" => run_fig5(seed),
        "fig6" => run_fig6(seed),
        "ablations" => run_ablations(seed),
        "extension" => run_extension(seed),
        "all" => {
            run_table1(seed);
            run_table2();
            run_table3(seed);
            // Figures 3, 4 and 6 share Table 4's runs; compute once.
            let rows = table4(seed);
            print_table4(&rows);
            print_fig3(&rows);
            print_fig4(&rows);
            print_fig6(&rows);
            run_fig2(seed);
            run_fig5(seed);
            run_ablations(seed);
            run_extension(seed);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: repro [table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|ablations|extension|all] [seed]"
            );
            std::process::exit(2);
        }
    }
}

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn run_table1(seed: u64) {
    heading("Table 1: 100 x 5 s CPU-bound map across services (incl. (de)provisioning)");
    let t = table1(seed);
    let mut table = Table::new(["Service", "Paper", "Measured"]);
    table.row([
        "AWS Lambda".to_owned(),
        format!("{:.2} s", TABLE1_PAPER.lambda_secs),
        format!("{:.2} s", t.lambda_secs),
    ]);
    table.row([
        "AWS EC2 (m6a.32xlarge)".to_owned(),
        format!("{:.2} s", TABLE1_PAPER.ec2_secs),
        format!("{:.2} s", t.ec2_secs),
    ]);
    table.row([
        "AWS EMR Serverless".to_owned(),
        format!("{:.2} s", TABLE1_PAPER.emr_secs),
        format!("{:.2} s", t.emr_secs),
    ]);
    print!("{table}");
}

fn run_table2() {
    heading("Table 2: METASPACE job setups");
    let mut table = Table::new([
        "Job",
        "Dataset (GB)",
        "Database (#formulas)",
        "Max volume (GB)",
    ]);
    for job in table2() {
        table.row([
            job.name.to_owned(),
            format!("{:.2}", job.dataset_gb),
            format!("{}k", job.db_formulas / 1000),
            format!("{:.2}", job.max_volume_gb),
        ]);
    }
    print!("{table}");
}

fn run_table3(seed: u64) {
    heading("Table 3: CPU usage, Xenograft (cloud functions vs Spark), percent");
    let t = table3(seed);
    let cf = t.cloud_functions;
    let sp = t.spark;
    let measured = [
        ("average", cf.average, sp.average),
        ("std-dev", cf.std_dev, sp.std_dev),
        ("maximum", cf.max, sp.max),
        ("minimum", cf.min, sp.min),
        ("stateful-average", cf.stateful_average, sp.stateful_average),
    ];
    let mut table = Table::new([
        "Metric",
        "CF paper",
        "CF measured",
        "Spark paper",
        "Spark measured",
    ]);
    for ((name, p_cf, p_sp), (_, m_cf, m_sp)) in TABLE3_PAPER.iter().zip(measured.iter()) {
        table.row([
            (*name).to_owned(),
            format!("{p_cf:.2}"),
            format!("{m_cf:.2}"),
            format!("{p_sp:.2}"),
            format!("{m_sp:.2}"),
        ]);
    }
    print!("{table}");
}

fn run_table4(seed: u64) {
    let rows = table4(seed);
    print_table4(&rows);
}

fn print_table4(rows: &[Table4Row]) {
    heading("Table 4: end-to-end annotation time per architecture (seconds)");
    let mut table = Table::new([
        "Job", "CF paper", "CF", "Hybrid paper", "Hybrid", "Spark paper", "Spark",
    ]);
    for row in rows {
        let (_, p_cf, p_hy, p_sp) = TABLE4_PAPER
            .iter()
            .find(|(n, ..)| *n == row.job.name)
            .expect("paper row");
        table.row([
            row.job.name.to_owned(),
            format!("{p_cf:.2}"),
            format!("{:.2}", row.cloud_functions.wall_secs),
            format!("{p_hy:.2}"),
            format!("{:.2}", row.hybrid.wall_secs),
            format!("{p_sp:.2}"),
            format!("{:.2}", row.spark.wall_secs),
        ]);
    }
    print!("{table}");
}

fn run_fig2(seed: u64) {
    heading("Figure 2: concurrent functions per stage, serverless Xenograft");
    println!("(stateful stages marked *)");
    let stages = fig2(seed);
    let items: Vec<(String, f64)> = stages
        .iter()
        .map(|(name, tasks, stateful, _)| {
            let label = if *stateful {
                format!("*{name}")
            } else {
                name.clone()
            };
            (label, *tasks as f64)
        })
        .collect();
    print!("{}", bar_chart(&items, 48));
}

fn run_fig3(seed: u64) {
    let rows = table4(seed);
    print_fig3(&rows);
}

fn print_fig3(rows: &[Table4Row]) {
    heading("Figure 3: execution time, cloud functions vs Spark (seconds)");
    let mut items = Vec::new();
    for row in rows {
        items.push((
            format!("{} CF", row.job.name),
            row.cloud_functions.wall_secs,
        ));
        items.push((format!("{} Spark", row.job.name), row.spark.wall_secs));
    }
    print!("{}", bar_chart(&items, 48));
    let xeno = rows.iter().find(|r| r.job.name == "Xenograft").unwrap();
    println!(
        "{}",
        PaperRow::new(
            "Xenograft speedup of CF over Spark",
            2.50,
            xeno.spark.wall_secs / xeno.cloud_functions.wall_secs
        )
    );
    let x089 = rows.iter().find(|r| r.job.name == "X089").unwrap();
    println!(
        "{}",
        PaperRow::new(
            "X089 annotation-time reduction (%)",
            81.0,
            (1.0 - x089.cloud_functions.wall_secs / x089.spark.wall_secs) * 100.0
        )
    );
}

fn run_fig4(seed: u64) {
    let rows = table4(seed);
    print_fig4(&rows);
}

fn print_fig4(rows: &[Table4Row]) {
    heading("Figure 4: cost, cloud functions vs Spark (dollars)");
    let mut items = Vec::new();
    for row in rows {
        items.push((format!("{} CF", row.job.name), row.cloud_functions.cost_usd));
        items.push((format!("{} Spark", row.job.name), row.spark.cost_usd));
    }
    print!("{}", bar_chart(&items, 48));
    for row in rows {
        let (_, paper_ratio) = FIG4_PAPER_RATIO
            .iter()
            .find(|(n, _)| *n == row.job.name)
            .expect("paper ratio");
        println!(
            "{}",
            PaperRow::new(
                format!("{} CF/Spark cost ratio", row.job.name),
                *paper_ratio,
                row.cloud_functions.cost_usd / row.spark.cost_usd
            )
        );
    }
}

fn run_fig5(seed: u64) {
    heading("Figure 5: Xenograft distributed sort, serverless vs single VM");
    let f = fig5(seed);
    let mut table = Table::new(["Architecture", "Time (s)", "Cost ($)"]);
    table.row([
        "37 x 1769 MB functions".to_owned(),
        format!("{:.1}", f.serverless.wall_secs),
        format!("{:.3}", f.serverless.cost_usd),
    ]);
    table.row([
        "one m4.4xlarge VM".to_owned(),
        format!("{:.1}", f.vm.wall_secs),
        format!("{:.3}", f.vm.cost_usd),
    ]);
    print!("{table}");
    println!(
        "{}",
        PaperRow::new(
            "serverless speedup over the VM",
            FIG5_PAPER_SPEEDUP,
            f.vm.wall_secs / f.serverless.wall_secs
        )
    );
    println!(
        "{}",
        PaperRow::new(
            "VM cost advantage (x cheaper)",
            FIG5_PAPER_COST_RATIO,
            f.serverless.cost_usd / f.vm.cost_usd
        )
    );
}

fn run_fig6(seed: u64) {
    let rows = table4(seed);
    print_fig6(&rows);
}

fn print_fig6(rows: &[Table4Row]) {
    heading("Figure 6: cost-performance, 1/(latency x cost)");
    let mut items = Vec::new();
    for row in rows {
        items.push((
            format!("{} CF", row.job.name),
            row.cloud_functions.cost_performance(),
        ));
        items.push((
            format!("{} hybrid", row.job.name),
            row.hybrid.cost_performance(),
        ));
        items.push((format!("{} Spark", row.job.name), row.spark.cost_performance()));
    }
    print!("{}", bar_chart(&items, 48));
    for (job, paper_gain) in [("Xenograft", 188.23), ("X089", 148.10)] {
        let row = rows.iter().find(|r| r.job.name == job).unwrap();
        let gain = (row.hybrid.cost_performance() / row.cloud_functions.cost_performance()
            - 1.0)
            * 100.0;
        println!(
            "{}",
            PaperRow::new(
                format!("{job} hybrid cost-perf improvement (%)"),
                paper_gain,
                gain
            )
        );
    }
}

fn run_ablations(seed: u64) {
    heading("Ablation: proactive instance reuse across jobs (3 maps on the VM backend)");
    let (with_reuse, without) = ablation_reuse(seed);
    let mut table = Table::new(["Policy", "Time (s)"]);
    table.row(["reuse instances".to_owned(), format!("{with_reuse:.1}")]);
    table.row(["fresh VMs per job".to_owned(), format!("{without:.1}")]);
    print!("{table}");

    heading("Ablation: Lambda memory size (50 x 5 s CPU-bound map)");
    let mut table = Table::new(["Memory (MB)", "Time (s)", "Cost ($)"]);
    for mem in [885u32, 1769, 3538] {
        let (t, c) = ablation_memory(seed, mem);
        table.row([format!("{mem}"), format!("{t:.1}"), format!("{c:.4}")]);
    }
    print!("{table}");

    heading("Ablation: per-prefix storage bandwidth vs the serverless sort");
    let mut table = Table::new(["Prefix bandwidth (MB/s)", "Sort time (s)", "Cost ($)"]);
    for bw in [250.0e6, 500.0e6, 1000.0e6, 2000.0e6] {
        let r = ablation_prefix_bandwidth(seed, bw);
        table.row([
            format!("{:.0}", bw / 1e6),
            format!("{:.1}", r.wall_secs),
            format!("{:.3}", r.cost_usd),
        ]);
    }
    print!("{table}");

    heading("Ablation: fault rate vs retry overhead (40-task map, both backends)");
    let mut table = Table::new([
        "Fault rate (%)",
        "FaaS time (s)",
        "FaaS cost ($)",
        "VM time (s)",
        "VM cost ($)",
        "Faults",
        "Retries",
    ]);
    for rate in [0.0, 0.01, 0.02, 0.05] {
        let p = ablation_fault_rate(seed, rate);
        table.row([
            format!("{:.0}", rate * 100.0),
            format!("{:.1}", p.faas_wall_secs),
            format!("{:.4}", p.faas_cost_usd),
            format!("{:.1}", p.vm_wall_secs),
            format!("{:.4}", p.vm_cost_usd),
            format!("{}", p.faults_injected),
            format!("{}", p.retries),
        ]);
    }
    print!("{table}");
}

fn run_extension(seed: u64) {
    heading("Extension (paper §4.2 closing remark): vertically scaled huge sorts");
    let mut table = Table::new(["Volume (GB)", "Instance chosen", "Time (s)", "Cost ($)"]);
    for gb in [100.0, 300.0, 1000.0] {
        let (itype, wall, cost) = extension_huge_sort(seed, gb);
        table.row([
            format!("{gb:.0}"),
            itype,
            format!("{wall:.1}"),
            format!("{cost:.3}"),
        ]);
    }
    print!("{table}");
    println!("(instances up to the 12 TiB u7i keep even TB-scale sorts in one memory space)");
}
