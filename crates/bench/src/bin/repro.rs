//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation and prints it next to the published numbers.
//!
//! ```text
//! repro [table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|ablations|all] [seed]
//! repro trace <job> [--arch serverless|hybrid|spark] [--seed N]
//! repro plan <job> [--objective cost|latency|pareto] [--threads N] [--seed N] [--smoke|--providers]
//! repro fleet <scenario> [--arrival-rate R] [--duration S] [--seed N] [--threads N]
//! repro dag <job> [--seed N] [--smoke]
//! repro workload <name|all|path/to.wl> [--seed N] [--smoke] [--dsl]
//! repro workload --list
//! repro providers
//! ```
//!
//! `trace` writes deterministic Chrome trace-event JSON to stdout (load
//! it in `chrome://tracing` or <https://ui.perfetto.dev>) and a text
//! summary to stderr.
//!
//! `plan` searches the deployment-plan space for a job and prints the
//! Pareto frontier over (cost, makespan) — the what-if planner that
//! rediscovers the paper's hand-picked hybrid. `--threads` is purely a
//! speed knob: the frontier is byte-identical at any worker count.
//!
//! `fleet` replays multi-tenant traffic through the region under the
//! three deployment policies (serverless, per-job fleets, shared warm
//! pool) and prints per-policy and per-tenant cost/latency tables.
//! Like `plan`, `--threads` never changes a byte of output.
//!
//! `dag` runs a job's hybrid deployment twice from the same seed —
//! classic stage barriers vs dependency-driven (pipelined) scheduling —
//! and prints the stage-window table, overlap per stage, the DAG's
//! critical path and a greppable verdict line. `--smoke` shrinks the
//! stage graph for debug-fast CI gates.
//!
//! `workload` runs any workload description — bundled (METASPACE jobs
//! and the DSL families alike) or loaded from a `.wl` file on disk —
//! under three plans: hybrid barrier, hybrid pipelined, pure
//! serverless; it prints the declared DAG, the economics table and two
//! greppable verdict lines per workload. `workload all` sweeps every
//! bundled workload and closes with a combined summary table; `--list`
//! prints one name per line (the CI smoke gate enumerates it); `--dsl`
//! prints the workload's canonical DSL text instead of running it.
//!
//! `providers` prints the provider/region registry: each region's
//! catalog size, master instance, FaaS tariff, cold-start shape, quota
//! defaults and spot market. `plan --providers` sweeps provider ×
//! region × spot-vs-on-demand as free plan dimensions (region plans
//! carry `:@{region}` key suffixes, spot plans `:sp`).

use std::env;

use bench::render::{
    render_dag, render_fig2, render_fig3_rows, render_fig4_rows, render_fig5, render_fig6_rows,
    render_plan_search, render_table1, render_table2, render_table3, render_table4_rows,
    render_trace, render_workload, workload_rows,
};
use bench::{
    ablation_fault_rate, ablation_memory, ablation_prefix_bandwidth, ablation_reuse,
    dag_comparison, extension_huge_sort, table4, workload_comparison,
};
use fleet::Scenario;
use metaspace::jobs;
use planner::{search, Evaluator, Objective, SearchConfig, SearchSpace};
use telemetry::Table;

fn main() {
    let args: Vec<String> = env::args().collect();
    let what = args.get(1).map_or("all", String::as_str);
    if what == "trace" {
        run_trace(&args[2..]);
        return;
    }
    if what == "plan" {
        run_plan(&args[2..]);
        return;
    }
    if what == "fleet" {
        run_fleet(&args[2..]);
        return;
    }
    if what == "dag" {
        run_dag_cmd(&args[2..]);
        return;
    }
    if what == "workload" {
        run_workload_cmd(&args[2..]);
        return;
    }
    if what == "providers" {
        run_providers();
        return;
    }
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    match what {
        "table1" => print!("{}", render_table1(seed)),
        "table2" => print!("{}", render_table2()),
        "table3" => print!("{}", render_table3(seed)),
        "table4" => print!("{}", render_table4_rows(&table4(seed))),
        "fig2" => print!("{}", render_fig2(seed)),
        "fig3" => print!("{}", render_fig3_rows(&table4(seed))),
        "fig4" => print!("{}", render_fig4_rows(&table4(seed))),
        "fig5" => print!("{}", render_fig5(seed)),
        "fig6" => print!("{}", render_fig6_rows(&table4(seed))),
        "ablations" => run_ablations(seed),
        "extension" => run_extension(seed),
        "all" => {
            print!("{}", render_table1(seed));
            print!("{}", render_table2());
            print!("{}", render_table3(seed));
            // Figures 3, 4 and 6 share Table 4's runs; compute once.
            let rows = table4(seed);
            print!("{}", render_table4_rows(&rows));
            print!("{}", render_fig3_rows(&rows));
            print!("{}", render_fig4_rows(&rows));
            print!("{}", render_fig6_rows(&rows));
            print!("{}", render_fig2(seed));
            print!("{}", render_fig5(seed));
            run_ablations(seed);
            run_extension(seed);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            eprintln!(
                "usage: repro [table1|table2|table3|table4|fig2|fig3|fig4|fig5|fig6|ablations|extension|all] [seed]"
            );
            eprintln!("       repro trace <job> [--arch serverless|hybrid|spark] [--seed N]");
            eprintln!(
                "       repro plan <job> [--objective cost|latency|pareto] [--threads N] [--seed N] [--smoke]"
            );
            eprintln!(
                "       repro fleet <scenario> [--arrival-rate R] [--duration S] [--seed N] [--threads N]"
            );
            eprintln!("       repro dag <job> [--seed N] [--smoke]");
            eprintln!("       repro workload <name|all|path/to.wl> [--seed N] [--smoke] [--dsl]");
            eprintln!("       repro workload --list");
            eprintln!("       repro providers");
            std::process::exit(2);
        }
    }
}

/// `repro trace <job> [--arch A] [--seed N]`: trace JSON on stdout,
/// summary on stderr.
fn run_trace(args: &[String]) {
    let mut job = None;
    let mut arch = "serverless".to_owned();
    let mut seed = 1u64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--arch" => match it.next() {
                Some(a) => arch = a.clone(),
                None => die("--arch needs a value"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed needs an integer"),
            },
            other if job.is_none() && !other.starts_with('-') => job = Some(other.to_owned()),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(job) = job else {
        die("usage: repro trace <job> [--arch serverless|hybrid|spark] [--seed N]");
    };
    match render_trace(&job, &arch, seed) {
        Ok(trace) => {
            print!("{}", trace.chrome_json);
            eprint!("{}", trace.summary);
        }
        Err(msg) => die(&msg),
    }
}

/// `repro plan <job> [--objective O] [--threads N] [--seed N]
/// [--smoke|--providers]`: searches the deployment space and prints the
/// Pareto frontier.
fn run_plan(args: &[String]) {
    let mut job = None;
    let mut objective = Objective::Pareto;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut seed = 42u64;
    let mut smoke = false;
    let mut providers = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--objective" => match it.next().map(String::as_str).and_then(Objective::parse) {
                Some(o) => objective = o,
                None => die("--objective needs cost|latency|pareto"),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => die("--threads needs a positive integer"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed needs an integer"),
            },
            "--smoke" => smoke = true,
            "--providers" => providers = true,
            other if job.is_none() && !other.starts_with('-') => job = Some(other.to_owned()),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(job) = job else {
        die("usage: repro plan <job> [--objective cost|latency|pareto] [--threads N] [--seed N] [--smoke|--providers]");
    };
    if smoke && providers {
        die("--smoke and --providers name different search spaces; pick one");
    }
    let Some(spec) = jobs::by_name(&job) else {
        die(&format!("unknown job `{job}` (expected Brain, Xenograft or X089)"));
    };
    let ev = Evaluator::for_job(&spec, seed);
    let space = if providers {
        SearchSpace::provider_sweep(&ev.stages)
    } else if smoke {
        SearchSpace::smoke(&ev.stages)
    } else {
        SearchSpace::standard(&ev.stages)
    };
    let cfg = SearchConfig {
        objective,
        threads,
        seed,
        ..SearchConfig::default()
    };
    let report = search(&ev, &space, &cfg);
    print!("{}", render_plan_search(spec.name, &report, objective));
}

/// `repro fleet <scenario> [--arrival-rate R] [--duration S] [--seed N]
/// [--threads N]`: replays multi-tenant traffic under all three
/// policies and prints the comparison tables.
fn run_fleet(args: &[String]) {
    let mut scenario = None;
    let mut arrival_rate = None;
    let mut duration = None;
    let mut seed = 42u64;
    let mut threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--arrival-rate" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(r) if r > 0.0 => arrival_rate = Some(r),
                _ => die("--arrival-rate needs a positive number (jobs/minute)"),
            },
            "--duration" => match it.next().and_then(|s| s.parse::<f64>().ok()) {
                Some(d) if d > 0.0 => duration = Some(d),
                _ => die("--duration needs a positive number (seconds)"),
            },
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed needs an integer"),
            },
            "--threads" => match it.next().and_then(|s| s.parse().ok()) {
                Some(n) if n >= 1 => threads = n,
                _ => die("--threads needs a positive integer"),
            },
            other if scenario.is_none() && !other.starts_with('-') => {
                scenario = Some(other.to_owned())
            }
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(scenario) = scenario else {
        die("usage: repro fleet <scenario> [--arrival-rate R] [--duration S] [--seed N] [--threads N]");
    };
    let Some(mut sc) = Scenario::named(&scenario) else {
        die(&format!(
            "unknown scenario `{scenario}` (expected one of: {})",
            Scenario::all_names().join(", ")
        ));
    };
    if let Some(rate) = arrival_rate {
        sc.arrival_rate_per_min = rate;
    }
    if let Some(secs) = duration {
        sc.duration_secs = secs;
    }
    match fleet::run_scenario(&sc, seed, threads) {
        Ok(report) => print!("{}", fleet::report::render(&report)),
        Err(err) => die(&format!("fleet run failed: {err}")),
    }
}

/// `repro dag <job> [--seed N] [--smoke]`: barrier vs pipelined on the
/// job's hybrid deployment.
fn run_dag_cmd(args: &[String]) {
    let mut job = None;
    let mut seed = 42u64;
    let mut smoke = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed needs an integer"),
            },
            "--smoke" => smoke = true,
            other if job.is_none() && !other.starts_with('-') => job = Some(other.to_owned()),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    let Some(job) = job else {
        die("usage: repro dag <job> [--seed N] [--smoke]");
    };
    let Some(spec) = jobs::by_name(&job) else {
        die(&format!("unknown job `{job}` (expected Brain, Xenograft or X089)"));
    };
    match dag_comparison(&spec, seed, smoke) {
        Ok(cmp) => print!("{}", render_dag(&cmp)),
        Err(err) => die(&format!("dag run failed: {err}")),
    }
}

/// `repro workload <name|all> [--seed N] [--smoke] [--dsl]` and
/// `repro workload --list`: the three-plan comparison of any bundled
/// workload description.
fn run_workload_cmd(args: &[String]) {
    let mut name = None;
    let mut seed = 42u64;
    let mut smoke = false;
    let mut dsl = false;
    let mut list = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => die("--seed needs an integer"),
            },
            "--smoke" => smoke = true,
            "--dsl" => dsl = true,
            "--list" => list = true,
            other if name.is_none() && !other.starts_with('-') => name = Some(other.to_owned()),
            other => die(&format!("unexpected argument `{other}`")),
        }
    }
    if list {
        for n in metaspace::workloads::all_names() {
            println!("{n}");
        }
        return;
    }
    let Some(name) = name else {
        die("usage: repro workload <name|all> [--seed N] [--smoke] [--dsl]\n       repro workload --list");
    };
    let names = if name == "all" {
        metaspace::workloads::all_names()
    } else {
        vec![name]
    };
    let mut all_rows = Vec::new();
    for n in &names {
        let w = if n.ends_with(".wl") || n.contains('/') {
            load_workload_file(n)
        } else {
            match metaspace::workloads::named(n) {
                Some(w) => w,
                None => die(&format!(
                    "unknown workload `{n}` (one of: {}; or a .wl file path)",
                    metaspace::workloads::all_names().join(", ")
                )),
            }
        };
        if dsl {
            print!("{}", workload::emit(&w));
            continue;
        }
        match workload_comparison(&w, seed, smoke) {
            Ok(cmp) => {
                print!("{}", render_workload(&cmp));
                all_rows.extend(workload_rows(&cmp));
            }
            Err(err) => die(&format!("workload `{n}` failed: {err}")),
        }
    }
    if names.len() > 1 && !all_rows.is_empty() {
        heading("All bundled workloads: plan economics side by side");
        print!("{}", telemetry::workload_table(&all_rows));
    }
}

/// Loads and validates a workload description from a `.wl` file.
fn load_workload_file(path: &str) -> workload::Workload {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(err) => die(&format!("cannot read workload file `{path}`: {err}")),
    };
    match workload::parse(&text) {
        Ok(w) => w,
        Err(err) => die(&format!("workload file `{path}`: {err}")),
    }
}

/// `repro providers`: the provider/region registry and spot markets.
fn run_providers() {
    heading("Provider/region registry (cloudsim::providers)");
    let mut table = Table::new([
        "Region",
        "Instances",
        "Master",
        "FaaS $/GiB-s",
        "Cold start p50 (s)",
        "Lambda quota",
        "vCPU quota",
        "Spot disc.",
        "Preempt p",
        "Reclaim window (s)",
    ]);
    for region in cloudsim::regions() {
        table.row([
            region.key(),
            format!("{}", region.catalog.len()),
            region.master_instance.to_owned(),
            format!("{:.9}", region.faas_tariff.usd_per_gib_second),
            format!("{:.1}", region.cold_start_median),
            format!("{}", region.quotas.lambda_concurrency),
            format!("{:.0}", region.quotas.ec2_vcpus),
            format!("{:.0}%", region.spot.discount * 100.0),
            format!("{:.2}", region.spot.preemption_prob),
            format!(
                "{:.0}-{:.0}",
                region.spot.preemption_after.0, region.spot.preemption_after.1
            ),
        ]);
    }
    print!("{table}");
    println!(
        "(default region: {}; `repro plan <job> --providers` sweeps region x tenancy,",
        cloudsim::default_region().key()
    );
    println!(" `repro fleet spot-storm` / `repro fleet spillover` exercise the markets under traffic)");
}

fn die(msg: &str) -> ! {
    eprintln!("{msg}");
    std::process::exit(2);
}

fn heading(title: &str) {
    println!("\n=== {title} ===");
}

fn run_ablations(seed: u64) {
    heading("Ablation: proactive instance reuse across jobs (3 maps on the VM backend)");
    let (with_reuse, without) = ablation_reuse(seed);
    let mut table = Table::new(["Policy", "Time (s)"]);
    table.row(["reuse instances".to_owned(), format!("{with_reuse:.1}")]);
    table.row(["fresh VMs per job".to_owned(), format!("{without:.1}")]);
    print!("{table}");

    heading("Ablation: Lambda memory size (50 x 5 s CPU-bound map)");
    let mut table = Table::new(["Memory (MB)", "Time (s)", "Cost ($)"]);
    for mem in [885u32, 1769, 3538] {
        let (t, c) = ablation_memory(seed, mem);
        table.row([format!("{mem}"), format!("{t:.1}"), format!("{c:.4}")]);
    }
    print!("{table}");

    heading("Ablation: per-prefix storage bandwidth vs the serverless sort");
    let mut table = Table::new(["Prefix bandwidth (MB/s)", "Sort time (s)", "Cost ($)"]);
    for bw in [250.0e6, 500.0e6, 1000.0e6, 2000.0e6] {
        let r = ablation_prefix_bandwidth(seed, bw);
        table.row([
            format!("{:.0}", bw / 1e6),
            format!("{:.1}", r.wall_secs),
            format!("{:.3}", r.cost_usd),
        ]);
    }
    print!("{table}");

    heading("Ablation: fault rate vs retry overhead (40-task map, both backends)");
    let mut table = Table::new([
        "Fault rate (%)",
        "FaaS time (s)",
        "FaaS cost ($)",
        "VM time (s)",
        "VM cost ($)",
        "Faults",
        "Retries",
    ]);
    for rate in [0.0, 0.01, 0.02, 0.05] {
        let p = ablation_fault_rate(seed, rate);
        table.row([
            format!("{:.0}", rate * 100.0),
            format!("{:.1}", p.faas_wall_secs),
            format!("{:.4}", p.faas_cost_usd),
            format!("{:.1}", p.vm_wall_secs),
            format!("{:.4}", p.vm_cost_usd),
            format!("{}", p.faults_injected),
            format!("{}", p.retries),
        ]);
    }
    print!("{table}");
}

fn run_extension(seed: u64) {
    heading("Extension (paper §4.2 closing remark): vertically scaled huge sorts");
    let mut table = Table::new(["Volume (GB)", "Instance chosen", "Time (s)", "Cost ($)"]);
    for gb in [100.0, 300.0, 1000.0] {
        let (itype, wall, cost) = extension_huge_sort(seed, gb);
        table.row([
            format!("{gb:.0}"),
            itype,
            format!("{wall:.1}"),
            format!("{cost:.3}"),
        ]);
    }
    print!("{table}");
    println!("(instances up to the 12 TiB u7i keep even TB-scale sorts in one memory space)");
}
