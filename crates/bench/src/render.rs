//! Text rendering of every table and figure, shared by the `repro`
//! binary and the golden-table regression suite.
//!
//! Each `render_*` function returns exactly what `repro <what>` prints
//! (heading included), so goldens snapshot the user-visible output.

use metaspace::{jobs, run_annotation_traced, Architecture, TraceOutput};
use planner::{Objective, SearchReport};
use telemetry::report::bar_chart;
use telemetry::{
    critical_path, dag_stage_table, plan_comparison, workload_table, PaperRow, PlanRow,
    StageWindow, Table, WorkloadRow,
};

use crate::{
    fig2, fig5, table1, table2, table3, table4, DagComparison, Table4Row, WorkloadComparison,
    FIG4_PAPER_RATIO, FIG5_PAPER_COST_RATIO, FIG5_PAPER_SPEEDUP, TABLE1_PAPER, TABLE3_PAPER,
    TABLE4_PAPER,
};

fn heading(out: &mut String, title: &str) {
    out.push_str(&format!("\n=== {title} ===\n"));
}

/// Renders Table 1.
pub fn render_table1(seed: u64) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Table 1: 100 x 5 s CPU-bound map across services (incl. (de)provisioning)",
    );
    let t = table1(seed);
    let mut table = Table::new(["Service", "Paper", "Measured"]);
    table.row([
        "AWS Lambda".to_owned(),
        format!("{:.2} s", TABLE1_PAPER.lambda_secs),
        format!("{:.2} s", t.lambda_secs),
    ]);
    table.row([
        "AWS EC2 (m6a.32xlarge)".to_owned(),
        format!("{:.2} s", TABLE1_PAPER.ec2_secs),
        format!("{:.2} s", t.ec2_secs),
    ]);
    table.row([
        "AWS EMR Serverless".to_owned(),
        format!("{:.2} s", TABLE1_PAPER.emr_secs),
        format!("{:.2} s", t.emr_secs),
    ]);
    out.push_str(&table.to_string());
    out
}

/// Renders Table 2.
pub fn render_table2() -> String {
    let mut out = String::new();
    heading(&mut out, "Table 2: METASPACE job setups");
    let mut table = Table::new([
        "Job",
        "Dataset (GB)",
        "Database (#formulas)",
        "Max volume (GB)",
    ]);
    for job in table2() {
        table.row([
            job.name.to_owned(),
            format!("{:.2}", job.dataset_gb),
            format!("{}k", job.db_formulas / 1000),
            format!("{:.2}", job.max_volume_gb),
        ]);
    }
    out.push_str(&table.to_string());
    out
}

/// Renders Table 3.
pub fn render_table3(seed: u64) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Table 3: CPU usage, Xenograft (cloud functions vs Spark), percent",
    );
    let t = table3(seed);
    let cf = t.cloud_functions;
    let sp = t.spark;
    let measured = [
        ("average", cf.average, sp.average),
        ("std-dev", cf.std_dev, sp.std_dev),
        ("maximum", cf.max, sp.max),
        ("minimum", cf.min, sp.min),
        ("stateful-average", cf.stateful_average, sp.stateful_average),
    ];
    let mut table = Table::new([
        "Metric",
        "CF paper",
        "CF measured",
        "Spark paper",
        "Spark measured",
    ]);
    for ((name, p_cf, p_sp), (_, m_cf, m_sp)) in TABLE3_PAPER.iter().zip(measured.iter()) {
        table.row([
            (*name).to_owned(),
            format!("{p_cf:.2}"),
            format!("{m_cf:.2}"),
            format!("{p_sp:.2}"),
            format!("{m_sp:.2}"),
        ]);
    }
    out.push_str(&table.to_string());
    out
}

/// Renders Table 4 from pre-computed rows.
pub fn render_table4_rows(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Table 4: end-to-end annotation time per architecture (seconds)",
    );
    let mut table = Table::new([
        "Job", "CF paper", "CF", "Hybrid paper", "Hybrid", "Spark paper", "Spark",
    ]);
    for row in rows {
        let (_, p_cf, p_hy, p_sp) = TABLE4_PAPER
            .iter()
            .find(|(n, ..)| *n == row.job.name)
            .expect("paper row");
        table.row([
            row.job.name.to_owned(),
            format!("{p_cf:.2}"),
            format!("{:.2}", row.cloud_functions.wall_secs),
            format!("{p_hy:.2}"),
            format!("{:.2}", row.hybrid.wall_secs),
            format!("{p_sp:.2}"),
            format!("{:.2}", row.spark.wall_secs),
        ]);
    }
    out.push_str(&table.to_string());
    out
}

/// Renders Table 4.
pub fn render_table4(seed: u64) -> String {
    render_table4_rows(&table4(seed))
}

/// Renders Figure 2.
pub fn render_fig2(seed: u64) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Figure 2: concurrent functions per stage, serverless Xenograft",
    );
    out.push_str("(stateful stages marked *)\n");
    let stages = fig2(seed);
    let items: Vec<(String, f64)> = stages
        .iter()
        .map(|(name, tasks, stateful, _)| {
            let label = if *stateful {
                format!("*{name}")
            } else {
                name.clone()
            };
            (label, *tasks as f64)
        })
        .collect();
    out.push_str(&bar_chart(&items, 48));
    out
}

/// Renders Figure 3 from pre-computed rows.
pub fn render_fig3_rows(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Figure 3: execution time, cloud functions vs Spark (seconds)",
    );
    let mut items = Vec::new();
    for row in rows {
        items.push((
            format!("{} CF", row.job.name),
            row.cloud_functions.wall_secs,
        ));
        items.push((format!("{} Spark", row.job.name), row.spark.wall_secs));
    }
    out.push_str(&bar_chart(&items, 48));
    let xeno = rows.iter().find(|r| r.job.name == "Xenograft").unwrap();
    out.push_str(&format!(
        "{}\n",
        PaperRow::new(
            "Xenograft speedup of CF over Spark",
            2.50,
            xeno.spark.wall_secs / xeno.cloud_functions.wall_secs
        )
    ));
    let x089 = rows.iter().find(|r| r.job.name == "X089").unwrap();
    out.push_str(&format!(
        "{}\n",
        PaperRow::new(
            "X089 annotation-time reduction (%)",
            81.0,
            (1.0 - x089.cloud_functions.wall_secs / x089.spark.wall_secs) * 100.0
        )
    ));
    out
}

/// Renders Figure 4 from pre-computed rows.
pub fn render_fig4_rows(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    heading(&mut out, "Figure 4: cost, cloud functions vs Spark (dollars)");
    let mut items = Vec::new();
    for row in rows {
        items.push((format!("{} CF", row.job.name), row.cloud_functions.cost_usd));
        items.push((format!("{} Spark", row.job.name), row.spark.cost_usd));
    }
    out.push_str(&bar_chart(&items, 48));
    for row in rows {
        let (_, paper_ratio) = FIG4_PAPER_RATIO
            .iter()
            .find(|(n, _)| *n == row.job.name)
            .expect("paper ratio");
        out.push_str(&format!(
            "{}\n",
            PaperRow::new(
                format!("{} CF/Spark cost ratio", row.job.name),
                *paper_ratio,
                row.cloud_functions.cost_usd / row.spark.cost_usd
            )
        ));
    }
    out
}

/// Renders Figure 5.
pub fn render_fig5(seed: u64) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        "Figure 5: Xenograft distributed sort, serverless vs single VM",
    );
    let f = fig5(seed);
    let mut table = Table::new(["Architecture", "Time (s)", "Cost ($)"]);
    table.row([
        "37 x 1769 MB functions".to_owned(),
        format!("{:.1}", f.serverless.wall_secs),
        format!("{:.3}", f.serverless.cost_usd),
    ]);
    table.row([
        "one m4.4xlarge VM".to_owned(),
        format!("{:.1}", f.vm.wall_secs),
        format!("{:.3}", f.vm.cost_usd),
    ]);
    out.push_str(&table.to_string());
    out.push_str(&format!(
        "{}\n",
        PaperRow::new(
            "serverless speedup over the VM",
            FIG5_PAPER_SPEEDUP,
            f.vm.wall_secs / f.serverless.wall_secs
        )
    ));
    out.push_str(&format!(
        "{}\n",
        PaperRow::new(
            "VM cost advantage (x cheaper)",
            FIG5_PAPER_COST_RATIO,
            f.serverless.cost_usd / f.vm.cost_usd
        )
    ));
    out
}

/// Renders Figure 6 from pre-computed rows.
pub fn render_fig6_rows(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    heading(&mut out, "Figure 6: cost-performance, 1/(latency x cost)");
    let mut items = Vec::new();
    for row in rows {
        items.push((
            format!("{} CF", row.job.name),
            row.cloud_functions.cost_performance(),
        ));
        items.push((
            format!("{} hybrid", row.job.name),
            row.hybrid.cost_performance(),
        ));
        items.push((
            format!("{} Spark", row.job.name),
            row.spark.cost_performance(),
        ));
    }
    out.push_str(&bar_chart(&items, 48));
    for (job, paper_gain) in [("Xenograft", 188.23), ("X089", 148.10)] {
        let row = rows.iter().find(|r| r.job.name == job).unwrap();
        let gain = (row.hybrid.cost_performance() / row.cloud_functions.cost_performance()
            - 1.0)
            * 100.0;
        out.push_str(&format!(
            "{}\n",
            PaperRow::new(
                format!("{job} hybrid cost-perf improvement (%)"),
                paper_gain,
                gain
            )
        ));
    }
    out
}

/// Renders Figure 6.
pub fn render_fig6(seed: u64) -> String {
    render_fig6_rows(&crate::table4(seed))
}

/// Renders a deployment-plan search: the Pareto frontier, the per-plan
/// comparison against the paper's named deployments, and the verdict
/// lines CI greps (`verdict: ...: yes|no|n/a`).
///
/// Deterministic: the text is a pure function of the report, and the
/// report is a pure function of `(workload, space, seed)` — never of
/// the worker count.
pub fn render_plan_search(job_label: &str, report: &SearchReport, objective: Objective) -> String {
    let mut out = String::new();
    heading(
        &mut out,
        &format!("Deployment-plan search: {job_label} (objective {objective})"),
    );
    out.push_str(&format!(
        "space {} candidates | evaluated {} ({}) | failed {}\n\n",
        report.space_size,
        report.evaluated,
        if report.exhaustive { "exhaustive grid" } else { "beam search" },
        report.failed,
    ));

    out.push_str("Pareto frontier (cost vs makespan):\n");
    let mut table = Table::new(["Plan", "Cost ($)", "Makespan (s)", "Waste", "Key"]);
    for p in report.frontier.points() {
        table.row([
            p.plan.name.clone(),
            format!("{:.4}", p.cost_usd),
            format!("{:.2}", p.makespan_secs),
            format!("{:.2}", p.waste),
            p.plan.key(),
        ]);
    }
    out.push_str(&table.to_string());

    // The paper's three hand-picked deployments next to the search's
    // best, when the space contained them.
    let named_outcome = |name: &str| report.ranked.iter().find(|o| o.plan.name == name);
    let mut rows: Vec<PlanRow> = Vec::new();
    for name in ["serverless", "hybrid", "spark"] {
        if let Some(o) = named_outcome(name) {
            rows.push(PlanRow::new(name, o.cost_usd, o.makespan_secs, o.waste));
        }
    }
    if let Some(best) = report.best() {
        if !matches!(best.plan.name.as_str(), "serverless" | "hybrid" | "spark") {
            rows.push(PlanRow::new(
                format!("best ({objective})"),
                best.cost_usd,
                best.makespan_secs,
                best.waste,
            ));
        }
    }
    if !rows.is_empty() {
        out.push_str("\nAgainst the paper's hand-picked deployments:\n");
        out.push_str(&plan_comparison(&rows));
    }

    // Verdicts: does the frontier hold a serverful (hybrid-family) plan
    // that matches or beats the paper's baselines? Each verdict
    // quantifies over the whole frontier; the *witness* verdict demands
    // one single plan that clears both bars at once (the acceptance
    // demo and CI grep these lines).
    let frontier_hybrids = || {
        report
            .frontier
            .points()
            .iter()
            .filter(|p| p.plan.architecture() == Architecture::Hybrid)
    };
    let serverless = named_outcome("serverless");
    let spark = named_outcome("spark");
    let yes_no = |b: bool| if b { "yes" } else { "no" };
    let some = |cond: &dyn Fn(&planner::PlanOutcome) -> bool, baseline_present: bool| {
        if baseline_present {
            yes_no(frontier_hybrids().any(cond)).to_owned()
        } else {
            "n/a".to_owned()
        }
    };
    out.push('\n');
    out.push_str(&format!(
        "verdict: frontier beats pure-serverless on cost: {}\n",
        match serverless {
            Some(s) => yes_no(
                report
                    .frontier
                    .points()
                    .iter()
                    .any(|p| p.plan.name != "serverless" && p.cost_usd <= s.cost_usd)
            )
            .to_owned(),
            None => "n/a".to_owned(),
        }
    ));
    out.push_str(&format!(
        "verdict: hybrid-family plan on frontier: {}\n",
        yes_no(frontier_hybrids().next().is_some())
    ));
    out.push_str(&format!(
        "verdict: frontier hybrid with cost <= pure-serverless cost: {}\n",
        some(
            &|p| serverless.is_some_and(|s| p.cost_usd <= s.cost_usd),
            serverless.is_some()
        )
    ));
    out.push_str(&format!(
        "verdict: frontier hybrid with makespan <= cluster makespan: {}\n",
        some(
            &|p| spark.is_some_and(|s| p.makespan_secs <= s.makespan_secs),
            spark.is_some()
        )
    ));
    let witness = frontier_hybrids().find(|p| {
        serverless.is_some_and(|s| p.cost_usd <= s.cost_usd)
            && spark.is_some_and(|s| p.makespan_secs <= s.makespan_secs)
    });
    out.push_str(&format!(
        "verdict: one frontier hybrid beats both baselines: {}\n",
        match (serverless, spark) {
            (Some(_), Some(_)) => yes_no(witness.is_some()).to_owned(),
            _ => "n/a".to_owned(),
        }
    ));
    if let Some(w) = witness {
        out.push_str(&format!(
            "rediscovered hybrid: {} (${:.4}, {:.2}s)\n",
            w.plan, w.cost_usd, w.makespan_secs
        ));
    }
    if let Some(best) = report.best() {
        out.push_str(&format!("best plan ({objective}): {}\n", best.plan));
    }
    out
}

/// Renders a barrier-vs-pipelined comparison of one job's hybrid
/// deployment: the per-stage window table with dataflow overlap, the
/// makespan/cost summary, the DAG's critical path, and the verdict
/// line CI greps.
///
/// Deterministic: a pure function of the comparison, which is itself a
/// pure function of `(job, seed)` — never of the worker count.
pub fn render_dag(cmp: &DagComparison) -> String {
    let windows = |report: &metaspace::AnnotationReport| -> Vec<StageWindow> {
        report
            .stages
            .iter()
            .map(|s| StageWindow::new(s.name.clone(), s.start_secs, s.end_secs))
            .collect()
    };
    let barrier = windows(&cmp.barrier);
    let pipelined = windows(&cmp.pipelined);

    let mut out = String::new();
    heading(
        &mut out,
        &format!("Dataflow execution: {} hybrid, barrier vs pipelined", cmp.job),
    );
    out.push_str(&dag_stage_table(&barrier, &pipelined, &cmp.edges));

    out.push_str(&format!(
        "\nmakespan: barrier {:.2} s -> pipelined {:.2} s ({:.2}x)\n",
        cmp.barrier.wall_secs,
        cmp.pipelined.wall_secs,
        cmp.barrier.wall_secs / cmp.pipelined.wall_secs
    ));
    out.push_str(&format!(
        "cost:     barrier ${:.4} -> pipelined ${:.4}\n",
        cmp.barrier.cost_usd, cmp.pipelined.cost_usd
    ));
    // Stage durations under barriers are the per-stage work unskewed by
    // overlap, so the critical path over them is the *stage-granular*
    // dataflow bound; task-level release can dip below it.
    let cp = critical_path(&barrier, &cmp.edges);
    out.push_str(&format!(
        "critical path ({:.2} s): {}\n",
        cp.secs,
        cp.label(&barrier)
    ));
    let wins = cmp.pipelined.wall_secs < cmp.barrier.wall_secs
        && cmp.pipelined.cost_usd <= cmp.barrier.cost_usd;
    out.push_str(&format!(
        "verdict: pipelined beats barrier at equal-or-lower cost: {}\n",
        if wins { "yes" } else { "no" }
    ));
    out
}

/// The three [`WorkloadRow`]s of one comparison, baseline (hybrid
/// barrier) first — building blocks for both the single-workload render
/// and the combined `repro workload all` summary table.
pub fn workload_rows(cmp: &WorkloadComparison) -> Vec<WorkloadRow> {
    let stages = cmp.workload.stages.len();
    let tasks: usize = cmp.workload.stages.iter().map(|s| s.tasks).sum();
    let row = |plan: &str, r: &metaspace::AnnotationReport| WorkloadRow {
        workload: cmp.name.clone(),
        stages,
        tasks,
        plan: plan.to_owned(),
        cost_usd: r.cost_usd,
        makespan_secs: r.wall_secs,
    };
    vec![
        row("hybrid-barrier", &cmp.hybrid_barrier),
        row("hybrid-pipelined", &cmp.hybrid_pipelined),
        row("serverless", &cmp.serverless),
    ]
}

/// The two release-gate claims of one workload comparison, as greppable
/// `verdict:` lines: does dependency-driven scheduling still win on
/// this graph, and does the hybrid deployment still beat pure
/// serverless on cost? Families where either claim reverses print `no`
/// — the point of running more than METASPACE.
pub fn workload_verdicts(cmp: &WorkloadComparison) -> String {
    let pipelined_wins = cmp.hybrid_pipelined.wall_secs < cmp.hybrid_barrier.wall_secs
        && cmp.hybrid_pipelined.cost_usd <= cmp.hybrid_barrier.cost_usd;
    let hybrid_wins = cmp.hybrid_barrier.cost_usd < cmp.serverless.cost_usd;
    format!(
        "verdict: {}: pipelined beats barrier at equal-or-lower cost: {}\n\
         verdict: {}: hybrid beats serverless on cost: {}\n",
        cmp.name,
        if pipelined_wins { "yes" } else { "no" },
        cmp.name,
        if hybrid_wins { "yes" } else { "no" },
    )
}

/// Renders one workload-description comparison: its declared DAG with
/// both hybrid schedules side by side, the three-plan economics table,
/// the stage-granular critical path, and the verdict lines CI greps.
///
/// Deterministic: a pure function of the comparison, which is itself a
/// pure function of `(workload, seed)`.
pub fn render_workload(cmp: &WorkloadComparison) -> String {
    let windows = |report: &metaspace::AnnotationReport| -> Vec<StageWindow> {
        report
            .stages
            .iter()
            .map(|s| StageWindow::new(s.name.clone(), s.start_secs, s.end_secs))
            .collect()
    };
    let barrier = windows(&cmp.hybrid_barrier);
    let pipelined = windows(&cmp.hybrid_pipelined);

    let mut out = String::new();
    heading(
        &mut out,
        &format!(
            "Workload {}: {} stages, {} tasks, {:.0} cpu-s declared",
            cmp.name,
            cmp.workload.stages.len(),
            cmp.workload.stages.iter().map(|s| s.tasks).sum::<usize>(),
            cmp.workload.total_cpu_secs()
        ),
    );
    out.push_str(&dag_stage_table(&barrier, &pipelined, &cmp.edges));
    out.push('\n');
    out.push_str(&workload_table(&workload_rows(cmp)));
    let cp = critical_path(&barrier, &cmp.edges);
    out.push_str(&format!(
        "\ncritical path ({:.2} s): {}\n",
        cp.secs,
        cp.label(&barrier)
    ));
    out.push_str(&workload_verdicts(cmp));
    out
}

/// Runs an annotation job with span tracing on and returns the trace
/// (Chrome JSON + summary). `job` matches a Table 2 job name
/// case-insensitively; `arch` is one of `serverless`, `hybrid` or
/// `spark`.
///
/// # Errors
///
/// Returns a message for unknown jobs/architectures or failed runs.
pub fn render_trace(job: &str, arch: &str, seed: u64) -> Result<TraceOutput, String> {
    let spec = jobs::all()
        .into_iter()
        .find(|j| j.name.eq_ignore_ascii_case(job))
        .ok_or_else(|| format!("unknown job `{job}` (expected Brain, Xenograft or X089)"))?;
    let arch = match arch.to_ascii_lowercase().as_str() {
        "serverless" | "cf" | "faas" => Architecture::Serverless,
        "hybrid" => Architecture::Hybrid,
        "spark" | "cluster" => Architecture::Cluster,
        other => return Err(format!("unknown architecture `{other}`")),
    };
    let (_, trace) =
        run_annotation_traced(&spec, arch, seed, cloudsim::CloudConfig::default())
            .map_err(|e| format!("traced run failed: {e}"))?;
    Ok(trace)
}
