//! Microbenchmarks of the deterministic async kernel
//! ([`simkernel::aio`]): raw event throughput, timer churn, fan-in
//! wakeup storms, and two replay-shaped head-to-heads of the old
//! scan-everything pump-loop discipline against the wake-only async
//! path (fleet stage completions, and completion-monitor poll churn). `scripts/ci.sh` runs these in `--release` every run, writes
//! `BENCH_kernel.json`, and fails the build when throughput regresses
//! more than 20% below the committed `BENCH_kernel_baseline.json`.
//!
//! The fleet-replay scenario is the headline number: both sides replay
//! the *identical* event schedule (same jobs, stages, task durations,
//! completion times — asserted via a commutative checksum), and differ
//! only in how stage completions reach the jobs. The legacy model
//! rescans every job's every stage slot on every world event, exactly
//! the shape of the old `poll_active`/`poll_pipe` loops; the async
//! model pops the same events and wakes only the one future whose gate
//! opened.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};
use std::time::Instant;

use simkernel::{join_all, AsyncExecutor, EventQueue, Gate, SimDuration, SimRng, SimTime};

/// Identifies the JSON layout; bump on breaking changes.
pub const SCHEMA: &str = "bench-kernel/v2";

/// Scenario sizes; [`KernelBenchConfig::full`] for CI, `tiny` for
/// debug-fast schema tests.
#[derive(Debug, Clone, Copy)]
pub struct KernelBenchConfig {
    /// Tasks in the event-throughput scenario.
    pub throughput_tasks: usize,
    /// Sleeps each throughput task awaits.
    pub throughput_rounds: usize,
    /// Tasks in the timer-churn scenario.
    pub churn_tasks: usize,
    /// Schedule-then-cancel rounds per churn task.
    pub churn_rounds: usize,
    /// Fan-in groups (stages) in the wakeup-storm scenario.
    pub fanin_groups: usize,
    /// Producers per fan-in group.
    pub fanin_producers: usize,
    /// Jobs in the fleet-replay scenario.
    pub fleet_jobs: usize,
    /// Sequential stages per replayed job.
    pub fleet_stages: usize,
    /// Tasks per replayed stage.
    pub fleet_tasks: usize,
    /// Non-completion world events interleaved per task (sandbox
    /// starts, transfers — the traffic the old loop rescanned on).
    pub fleet_noise: usize,
    /// Jobs in the monitor-churn scenario (each runs one completion
    /// monitor).
    pub monitor_jobs: usize,
    /// Tasks per monitor-churn job.
    pub monitor_tasks: usize,
    /// Poll interval of each monitor-churn monitor, in microseconds —
    /// short on purpose, so tick traffic dominates.
    pub monitor_interval_us: u64,
}

impl KernelBenchConfig {
    /// The CI configuration: fleet-scale sizes.
    pub fn full() -> Self {
        KernelBenchConfig {
            throughput_tasks: 4000,
            throughput_rounds: 40,
            churn_tasks: 2000,
            churn_rounds: 50,
            fanin_groups: 200,
            fanin_producers: 100,
            fleet_jobs: 400,
            fleet_stages: 5,
            fleet_tasks: 40,
            fleet_noise: 4,
            monitor_jobs: 500,
            monitor_tasks: 40,
            monitor_interval_us: 1_000,
        }
    }

    /// A milliseconds-fast configuration for schema tests.
    pub fn tiny() -> Self {
        KernelBenchConfig {
            throughput_tasks: 8,
            throughput_rounds: 3,
            churn_tasks: 8,
            churn_rounds: 3,
            fanin_groups: 3,
            fanin_producers: 4,
            fleet_jobs: 3,
            fleet_stages: 2,
            fleet_tasks: 3,
            fleet_noise: 2,
            monitor_jobs: 3,
            monitor_tasks: 4,
            monitor_interval_us: 2_000,
        }
    }
}

/// One scenario's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// Scenario name (stable across runs; baselines match on it).
    pub name: String,
    /// Events the scenario processed (timer fires, polls, wakes, or
    /// world events — whatever the scenario's unit of work is).
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_secs: f64,
    /// `events / wall_secs`.
    pub events_per_sec: f64,
}

/// The full kernel-bench report, serialised to `BENCH_kernel.json`.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchReport {
    /// Seed every scenario ran from.
    pub seed: u64,
    /// Git revision the binary was built from (passed in by ci.sh).
    pub git_rev: String,
    /// Per-scenario results, in a fixed order.
    pub scenarios: Vec<ScenarioResult>,
    /// Wall-clock ratio legacy-pump / async-kernel on the fleet-replay
    /// scenario (same events on both sides).
    pub fleet_replay_speedup: f64,
    /// Wall-clock ratio legacy-pump / async-kernel on the monitor-churn
    /// scenario (same events on both sides).
    pub monitor_churn_speedup: f64,
}

/// Runs every scenario and assembles the report.
///
/// # Panics
///
/// Panics if the fleet-replay legacy and async paths disagree on the
/// replayed completion-time checksum — the equivalence guard that makes
/// the speedup a like-for-like number.
pub fn run(seed: u64, git_rev: &str, cfg: &KernelBenchConfig) -> KernelBenchReport {
    let mut scenarios = Vec::new();
    scenarios.push(event_throughput(seed, cfg));
    scenarios.push(timer_churn(seed, cfg));
    scenarios.push(fanin_storm(seed, cfg));
    let (legacy, asynchronous) = fleet_replay(seed, cfg);
    let speedup = legacy.wall_secs / asynchronous.wall_secs;
    scenarios.push(legacy);
    scenarios.push(asynchronous);
    let (m_legacy, m_async) = monitor_churn(seed, cfg);
    let monitor_speedup = m_legacy.wall_secs / m_async.wall_secs;
    scenarios.push(m_legacy);
    scenarios.push(m_async);
    KernelBenchReport {
        seed,
        git_rev: git_rev.to_owned(),
        scenarios,
        fleet_replay_speedup: speedup,
        monitor_churn_speedup: monitor_speedup,
    }
}

fn result(name: &str, events: u64, wall_secs: f64) -> ScenarioResult {
    // Sub-microsecond walls only happen in tiny test configs; clamp so
    // events_per_sec stays finite there.
    let wall = wall_secs.max(1e-9);
    ScenarioResult {
        name: name.to_owned(),
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
    }
}

/// Raw event throughput: many tasks, each awaiting a chain of sleeps —
/// pure timer-wheel plus run-queue traffic.
fn event_throughput(seed: u64, cfg: &KernelBenchConfig) -> ScenarioResult {
    let exec = AsyncExecutor::new();
    let mut rng = SimRng::seed_from(seed);
    for _ in 0..cfg.throughput_tasks {
        let exec2 = exec.clone();
        let rounds = cfg.throughput_rounds;
        let jitter = rng.uniform_u64(1, 997);
        exec.spawn(async move {
            for r in 0..rounds {
                let d = (jitter + r as u64 * 31) % 997 + 1;
                exec2.sleep(SimDuration::from_micros(d)).await;
            }
        });
    }
    let t = Instant::now();
    let stuck = exec.run();
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(stuck, 0, "throughput tasks all complete");
    let st = exec.stats();
    result(
        "event-throughput",
        st.timer_fires + st.polls + st.wakes,
        wall,
    )
}

/// Polls a future exactly once and completes regardless of its result
/// — drops (cancels) a pending timer the way a timeout race would.
struct PollOnce<F: Future + Unpin>(F);

impl<F: Future + Unpin> Future for PollOnce<F> {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let _ = Pin::new(&mut self.0).poll(cx);
        Poll::Ready(())
    }
}

/// Timer churn: every round schedules a far-out timer, cancels it on
/// drop, then takes a real short sleep — the tombstone-pruning path.
fn timer_churn(seed: u64, cfg: &KernelBenchConfig) -> ScenarioResult {
    let exec = AsyncExecutor::new();
    let mut rng = SimRng::seed_from(seed ^ 0x5EED);
    let mut cancels = 0u64;
    for _ in 0..cfg.churn_tasks {
        let exec2 = exec.clone();
        let rounds = cfg.churn_rounds;
        let jitter = rng.uniform_u64(1, 113);
        cancels += rounds as u64;
        exec.spawn(async move {
            for r in 0..rounds {
                PollOnce(exec2.sleep(SimDuration::from_micros(1_000_000))).await;
                let d = (jitter + r as u64 * 7) % 113 + 1;
                exec2.sleep(SimDuration::from_micros(d)).await;
            }
        });
    }
    let t = Instant::now();
    let stuck = exec.run();
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(stuck, 0, "churn tasks all complete");
    result("timer-churn", exec.stats().timer_fires + cancels, wall)
}

/// Fan-in wakeup storm at fleet scale: each group's consumer joins a
/// herd of producers; a root joins every consumer — the `join_all`
/// shape every pipelined fleet job takes.
fn fanin_storm(seed: u64, cfg: &KernelBenchConfig) -> ScenarioResult {
    let exec = AsyncExecutor::new();
    let mut rng = SimRng::seed_from(seed ^ 0xFA41);
    let mut consumers = Vec::with_capacity(cfg.fanin_groups);
    for _ in 0..cfg.fanin_groups {
        let base = rng.uniform_u64(1, 53);
        let producers: Vec<_> = (0..cfg.fanin_producers)
            .map(|p| {
                let exec2 = exec.clone();
                exec.spawn(async move {
                    exec2
                        .sleep(SimDuration::from_micros(base + (p as u64 % 17)))
                        .await;
                })
            })
            .collect();
        consumers.push(exec.spawn(async move {
            join_all(producers).await;
        }));
    }
    let root = exec.spawn(async move {
        join_all(consumers).await;
    });
    let t = Instant::now();
    let stuck = exec.run();
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(stuck, 0, "storm tasks all complete");
    assert!(root.is_done(), "root fan-in completed");
    let st = exec.stats();
    result("fanin-storm", st.polls + st.wakes + st.timer_fires, wall)
}

/// A replayed world event: `task` finishing a stage's work, or noise
/// (transfers, sandbox starts) that the old loop still rescanned on.
#[derive(Clone, Copy)]
enum Ev {
    Noise,
    Done { job: usize, stage: usize, task: usize },
}

/// Order-independent fold of one stage completion, so both replay
/// models can accumulate in their own processing order.
fn mix(at: SimTime, job: usize, stage: usize) -> u64 {
    let x = at
        .as_micros()
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        ^ ((job as u64) << 32 | stage as u64);
    x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
}

/// Per-task stage durations, shared by both replay models.
fn fleet_durations(seed: u64, cfg: &KernelBenchConfig) -> Vec<Vec<Vec<u64>>> {
    let mut rng = SimRng::seed_from(seed ^ 0xF1EE7);
    (0..cfg.fleet_jobs)
        .map(|_| {
            (0..cfg.fleet_stages)
                .map(|_| {
                    (0..cfg.fleet_tasks)
                        .map(|_| rng.uniform_u64(1_000, 500_000))
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Schedules one stage's task events: noise at fractions of each task's
/// duration, the completion at the full duration.
fn schedule_stage(
    q: &mut EventQueue<Ev>,
    durs: &[Vec<Vec<u64>>],
    cfg: &KernelBenchConfig,
    job: usize,
    stage: usize,
    at: SimTime,
) {
    for (task, &dur) in durs[job][stage].iter().enumerate() {
        for i in 1..=cfg.fleet_noise {
            let frac = dur * i as u64 / (cfg.fleet_noise as u64 + 1);
            q.schedule_at(SimTime::from_micros(at.as_micros() + frac), Ev::Noise);
        }
        q.schedule_at(
            SimTime::from_micros(at.as_micros() + dur),
            Ev::Done { job, stage, task },
        );
    }
}

fn fleet_arrival(job: usize) -> SimTime {
    SimTime::from_micros(job as u64 * 50_000)
}

/// Replays the fleet schedule the old way: every popped world event
/// triggers a rescan of every job's every stage slot (the
/// `poll_active`/`poll_pipe` discipline), completed stages launch their
/// successor inline.
fn fleet_replay_legacy(
    seed: u64,
    cfg: &KernelBenchConfig,
    durs: &[Vec<Vec<u64>>],
) -> (ScenarioResult, u64) {
    let _ = seed;
    let mut q: EventQueue<Ev> = EventQueue::new();
    let mut done = vec![vec![vec![false; cfg.fleet_tasks]; cfg.fleet_stages]; cfg.fleet_jobs];
    let mut launched = vec![vec![false; cfg.fleet_stages]; cfg.fleet_jobs];
    let mut complete = vec![vec![false; cfg.fleet_stages]; cfg.fleet_jobs];
    for (job, slots) in launched.iter_mut().enumerate() {
        schedule_stage(&mut q, durs, cfg, job, 0, fleet_arrival(job));
        slots[0] = true;
    }
    let mut events = 0u64;
    let mut checksum = 0u64;
    let t = Instant::now();
    while let Some((now, ev)) = q.next() {
        events += 1;
        if let Ev::Done { job, stage, task } = ev {
            done[job][stage][task] = true;
        }
        // The old loop's shape: scan everything on every event.
        for job in 0..cfg.fleet_jobs {
            for stage in 0..cfg.fleet_stages {
                if !launched[job][stage] || complete[job][stage] {
                    continue;
                }
                if done[job][stage].iter().all(|d| *d) {
                    complete[job][stage] = true;
                    checksum = checksum.wrapping_add(mix(now, job, stage));
                    if stage + 1 < cfg.fleet_stages {
                        schedule_stage(&mut q, durs, cfg, job, stage + 1, now);
                        launched[job][stage + 1] = true;
                    }
                }
            }
        }
    }
    let wall = t.elapsed().as_secs_f64();
    (result("fleet-replay-legacy-pump", events, wall), checksum)
}

/// Replays the same schedule on the async kernel: the reactor pops the
/// identical events but only decrements a counter and opens a gate on
/// completions; each job is a future that awaits its stage gates and
/// schedules the successor stage itself.
fn fleet_replay_async(
    seed: u64,
    cfg: &KernelBenchConfig,
    durs: &[Vec<Vec<u64>>],
) -> (ScenarioResult, u64) {
    let _ = seed;
    let exec = AsyncExecutor::new();
    let q = Rc::new(RefCell::new(EventQueue::<Ev>::new()));
    let durs = Rc::new(durs.to_vec());
    let checksum = Rc::new(Cell::new(0u64));
    let gates: Vec<Vec<Gate>> = (0..cfg.fleet_jobs)
        .map(|_| (0..cfg.fleet_stages).map(|_| exec.gate()).collect())
        .collect();
    let mut remaining = vec![vec![cfg.fleet_tasks; cfg.fleet_stages]; cfg.fleet_jobs];
    for (job, stage_gates) in gates.iter().enumerate() {
        schedule_stage(&mut q.borrow_mut(), &durs, cfg, job, 0, fleet_arrival(job));
        let exec2 = exec.clone();
        let q2 = Rc::clone(&q);
        let durs2 = Rc::clone(&durs);
        let sum2 = Rc::clone(&checksum);
        let job_gates = stage_gates.clone();
        let cfg2 = *cfg;
        exec.spawn(async move {
            for (stage, gate) in job_gates.iter().enumerate() {
                gate.wait().await;
                let now = exec2.now();
                sum2.set(sum2.get().wrapping_add(mix(now, job, stage)));
                if stage + 1 < cfg2.fleet_stages {
                    schedule_stage(&mut q2.borrow_mut(), &durs2, &cfg2, job, stage + 1, now);
                }
            }
        });
    }
    let mut events = 0u64;
    let t = Instant::now();
    exec.run_ready();
    loop {
        let popped = q.borrow_mut().next();
        let Some((now, ev)) = popped else { break };
        events += 1;
        exec.advance_to(now);
        if let Ev::Done { job, stage, .. } = ev {
            remaining[job][stage] -= 1;
            if remaining[job][stage] == 0 {
                gates[job][stage].open();
            }
        }
        exec.run_ready();
    }
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(exec.pending_tasks(), 0, "every replayed job completed");
    (result("fleet-replay-async-kernel", events, wall), checksum.get())
}

/// Runs both fleet-replay models over the identical schedule, asserts
/// their completion-time checksums match, and returns both results
/// (legacy first).
fn fleet_replay(seed: u64, cfg: &KernelBenchConfig) -> (ScenarioResult, ScenarioResult) {
    let durs = fleet_durations(seed, cfg);
    let (legacy, legacy_sum) = fleet_replay_legacy(seed, cfg, &durs);
    let (asynchronous, async_sum) = fleet_replay_async(seed, cfg, &durs);
    assert_eq!(
        legacy_sum, async_sum,
        "fleet replay models diverged — the speedup would be meaningless"
    );
    assert_eq!(legacy.events, asynchronous.events, "same schedule, same events");
    (legacy, asynchronous)
}

/// A replayed monitor-churn world event: one task of `job` finishing,
/// or (legacy model only) one completion-monitor poll tick.
#[derive(Clone, Copy)]
enum MEv {
    TaskDone { job: usize },
    Poll { job: usize },
}

/// Per-task completion delays for the monitor-churn jobs. Forced odd so
/// a completion never ties with an (even-interval) poll tick — the two
/// replay models break same-instant ties differently.
fn monitor_durations(seed: u64, cfg: &KernelBenchConfig) -> Vec<Vec<u64>> {
    let mut rng = SimRng::seed_from(seed ^ 0x404E17);
    (0..cfg.monitor_jobs)
        .map(|_| {
            (0..cfg.monitor_tasks)
                .map(|_| rng.uniform_u64(1_000, 80_000) | 1)
                .collect()
        })
        .collect()
}

fn monitor_arrival(job: usize) -> u64 {
    job as u64 * 2_000
}

/// Replays monitor churn the old way: poll ticks are timer events routed
/// through the global queue, and every popped event walks every job's
/// monitor state to re-derive the one-LIST-in-flight guard (the
/// `schedule_poll`/`on_poll` discipline).
fn monitor_churn_legacy(
    seed: u64,
    cfg: &KernelBenchConfig,
    durs: &[Vec<u64>],
) -> (ScenarioResult, u64) {
    let _ = seed;
    let interval = cfg.monitor_interval_us;
    let mut q: EventQueue<MEv> = EventQueue::new();
    let mut remaining: Vec<usize> = durs.iter().map(Vec::len).collect();
    let mut ticks = vec![0u64; cfg.monitor_jobs];
    let mut finished = vec![false; cfg.monitor_jobs];
    for (job, ds) in durs.iter().enumerate() {
        let at = monitor_arrival(job);
        for &d in ds {
            q.schedule_at(SimTime::from_micros(at + d), MEv::TaskDone { job });
        }
        q.schedule_at(SimTime::from_micros(at + interval), MEv::Poll { job });
    }
    let mut events = 0u64;
    let mut checksum = 0u64;
    let t = Instant::now();
    while let Some((now, ev)) = q.next() {
        events += 1;
        // The old loop's shape: every pump re-derives the monitor guard
        // by scanning every job's state.
        let mut live = 0usize;
        for f in &finished {
            live += usize::from(!*f);
        }
        std::hint::black_box(live);
        match ev {
            MEv::TaskDone { job } => remaining[job] -= 1,
            MEv::Poll { job } => {
                ticks[job] += 1;
                checksum = checksum.wrapping_add(mix(now, job, ticks[job] as usize));
                if remaining[job] == 0 {
                    finished[job] = true;
                } else {
                    q.schedule_at(
                        SimTime::from_micros(now.as_micros() + interval),
                        MEv::Poll { job },
                    );
                }
            }
        }
    }
    let wall = t.elapsed().as_secs_f64();
    (result("monitor-churn-legacy-pump", events, wall), checksum)
}

/// Replays the same monitor churn on the async kernel: each job's
/// monitor is one future sleeping its poll interval on the kernel's
/// timer wheel; the reactor pops only the task completions and wakes
/// nobody else.
fn monitor_churn_async(
    seed: u64,
    cfg: &KernelBenchConfig,
    durs: &[Vec<u64>],
) -> (ScenarioResult, u64) {
    let _ = seed;
    let interval = cfg.monitor_interval_us;
    let exec = AsyncExecutor::new();
    let mut q: EventQueue<MEv> = EventQueue::new();
    let checksum = Rc::new(Cell::new(0u64));
    let remaining: Vec<Rc<Cell<usize>>> = durs
        .iter()
        .map(|ds| Rc::new(Cell::new(ds.len())))
        .collect();
    for (job, ds) in durs.iter().enumerate() {
        let at = monitor_arrival(job);
        for &d in ds {
            q.schedule_at(SimTime::from_micros(at + d), MEv::TaskDone { job });
        }
        let exec2 = exec.clone();
        let sum2 = Rc::clone(&checksum);
        let rem = Rc::clone(&remaining[job]);
        exec.spawn(async move {
            let mut next = at + interval;
            let mut ticks = 0u64;
            loop {
                let now = exec2.now().as_micros();
                exec2.sleep(SimDuration::from_micros(next - now)).await;
                ticks += 1;
                sum2.set(sum2.get().wrapping_add(mix(exec2.now(), job, ticks as usize)));
                if rem.get() == 0 {
                    break;
                }
                next += interval;
            }
        });
    }
    let mut events = 0u64;
    let t = Instant::now();
    exec.run_ready();
    while let Some((now, ev)) = q.next() {
        events += 1;
        exec.advance_to(now);
        let MEv::TaskDone { job } = ev else {
            unreachable!("the async model schedules no poll events")
        };
        remaining[job].set(remaining[job].get() - 1);
        exec.run_ready();
    }
    // The final detection tick of every job lies beyond the last world
    // event; drain the timer wheel.
    let stuck = exec.run();
    let wall = t.elapsed().as_secs_f64();
    assert_eq!(stuck, 0, "every monitor detected completion");
    events += exec.stats().timer_fires;
    (result("monitor-churn-async-kernel", events, wall), checksum.get())
}

/// Runs both monitor-churn models over the identical schedule, asserts
/// their tick-trace checksums match, and returns both results (legacy
/// first).
fn monitor_churn(seed: u64, cfg: &KernelBenchConfig) -> (ScenarioResult, ScenarioResult) {
    let durs = monitor_durations(seed, cfg);
    let (legacy, legacy_sum) = monitor_churn_legacy(seed, cfg, &durs);
    let (asynchronous, async_sum) = monitor_churn_async(seed, cfg, &durs);
    assert_eq!(
        legacy_sum, async_sum,
        "monitor-churn models diverged — the speedup would be meaningless"
    );
    assert_eq!(legacy.events, asynchronous.events, "same schedule, same events");
    (legacy, asynchronous)
}

impl KernelBenchReport {
    /// Serialises to the `BENCH_kernel.json` layout: one key per line,
    /// so the no-dependency parser (and grep) can read it back.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(out, "  \"seed\": {},", self.seed);
        let _ = writeln!(out, "  \"git_rev\": \"{}\",", self.git_rev.replace('"', ""));
        out.push_str("  \"scenarios\": [\n");
        for (i, s) in self.scenarios.iter().enumerate() {
            out.push_str("    {\n");
            let _ = writeln!(out, "      \"name\": \"{}\",", s.name);
            let _ = writeln!(out, "      \"events\": {},", s.events);
            let _ = writeln!(out, "      \"wall_secs\": {:.9},", s.wall_secs);
            let _ = writeln!(out, "      \"events_per_sec\": {:.3}", s.events_per_sec);
            out.push_str(if i + 1 < self.scenarios.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        out.push_str("  ],\n");
        let _ = writeln!(
            out,
            "  \"fleet_replay_speedup\": {:.3},",
            self.fleet_replay_speedup
        );
        let _ = writeln!(
            out,
            "  \"monitor_churn_speedup\": {:.3}",
            self.monitor_churn_speedup
        );
        out.push_str("}\n");
        out
    }

    /// Parses the [`Self::to_json`] layout (line-based; tolerant of key
    /// order inside a scenario object but not of reformatting).
    ///
    /// # Errors
    ///
    /// Returns a description of the first missing or malformed field.
    pub fn parse(json: &str) -> Result<Self, String> {
        fn str_field(line: &str) -> Option<&str> {
            let v = line.split(':').nth(1)?.trim().trim_end_matches(',');
            v.strip_prefix('"')?.strip_suffix('"').map(str::trim)
        }
        fn num_field(line: &str) -> Option<f64> {
            line.split(':').nth(1)?.trim().trim_end_matches(',').parse().ok()
        }

        let mut schema = None;
        let mut seed = None;
        let mut git_rev = None;
        let mut speedup = None;
        let mut monitor_speedup = None;
        let mut scenarios: Vec<ScenarioResult> = Vec::new();
        let mut cur: Option<ScenarioResult> = None;
        let mut in_scenarios = false;
        for line in json.lines() {
            let t = line.trim();
            if t.starts_with("\"scenarios\"") {
                in_scenarios = true;
            } else if in_scenarios && t.starts_with(']') {
                in_scenarios = false;
            } else if in_scenarios && t.starts_with('{') {
                cur = Some(ScenarioResult {
                    name: String::new(),
                    events: 0,
                    wall_secs: 0.0,
                    events_per_sec: 0.0,
                });
            } else if in_scenarios && t.starts_with('}') {
                let s = cur.take().ok_or("scenario object closed before it opened")?;
                if s.name.is_empty() {
                    return Err("scenario missing \"name\"".to_owned());
                }
                scenarios.push(s);
            } else if let Some(s) = cur.as_mut() {
                if t.starts_with("\"name\"") {
                    s.name = str_field(t).ok_or("bad scenario name")?.to_owned();
                } else if t.starts_with("\"events\"") {
                    s.events = num_field(t).ok_or("bad scenario events")? as u64;
                } else if t.starts_with("\"wall_secs\"") {
                    s.wall_secs = num_field(t).ok_or("bad scenario wall_secs")?;
                } else if t.starts_with("\"events_per_sec\"") {
                    s.events_per_sec = num_field(t).ok_or("bad scenario events_per_sec")?;
                }
            } else if t.starts_with("\"schema\"") {
                schema = str_field(t).map(str::to_owned);
            } else if t.starts_with("\"seed\"") {
                seed = num_field(t).map(|v| v as u64);
            } else if t.starts_with("\"git_rev\"") {
                git_rev = str_field(t).map(str::to_owned);
            } else if t.starts_with("\"fleet_replay_speedup\"") {
                speedup = num_field(t);
            } else if t.starts_with("\"monitor_churn_speedup\"") {
                monitor_speedup = num_field(t);
            }
        }
        let schema = schema.ok_or("missing \"schema\"")?;
        if schema != SCHEMA {
            return Err(format!("schema {schema:?}, expected {SCHEMA:?}"));
        }
        if scenarios.is_empty() {
            return Err("no scenarios".to_owned());
        }
        Ok(KernelBenchReport {
            seed: seed.ok_or("missing \"seed\"")?,
            git_rev: git_rev.ok_or("missing \"git_rev\"")?,
            scenarios,
            fleet_replay_speedup: speedup.ok_or("missing \"fleet_replay_speedup\"")?,
            monitor_churn_speedup: monitor_speedup
                .ok_or("missing \"monitor_churn_speedup\"")?,
        })
    }

    /// Looks up one scenario by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioResult> {
        self.scenarios.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_run_round_trips_through_json() {
        let report = run(7, "deadbeef", &KernelBenchConfig::tiny());
        let json = report.to_json();
        let back = KernelBenchReport::parse(&json).expect("parses");
        // Float fields are emitted rounded, so compare the canonical
        // serialisation (parse ∘ to_json must be idempotent) plus the
        // exact fields.
        assert_eq!(back.to_json(), json);
        assert_eq!(back.seed, report.seed);
        assert_eq!(back.git_rev, report.git_rev);
        assert_eq!(back.scenarios.len(), report.scenarios.len());
        for (b, r) in back.scenarios.iter().zip(&report.scenarios) {
            assert_eq!(b.name, r.name);
            assert_eq!(b.events, r.events);
        }
    }

    #[test]
    fn fleet_replay_models_agree_across_seeds() {
        let cfg = KernelBenchConfig::tiny();
        for seed in [1, 7, 42] {
            // `fleet_replay` panics internally on checksum divergence.
            let (l, a) = fleet_replay(seed, &cfg);
            assert_eq!(l.events, a.events);
        }
    }

    #[test]
    fn monitor_churn_models_agree_across_seeds() {
        let cfg = KernelBenchConfig::tiny();
        for seed in [1, 7, 42] {
            // `monitor_churn` panics internally on checksum divergence.
            let (l, a) = monitor_churn(seed, &cfg);
            assert_eq!(l.events, a.events);
        }
    }

    #[test]
    fn parse_rejects_missing_fields() {
        assert!(KernelBenchReport::parse("{}").is_err());
        let mut report = run(7, "x", &KernelBenchConfig::tiny());
        report.git_rev = String::new();
        let json = report.to_json().replace("\"git_rev\": \"\",\n", "");
        assert!(KernelBenchReport::parse(&json).is_err());
    }
}
