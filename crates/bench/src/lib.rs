//! Reproduction harness: one function per paper table/figure.
//!
//! Each function runs the corresponding experiment on the simulated
//! substrate and returns structured results; the `repro` binary renders
//! them next to the paper's published numbers, and the Criterion benches
//! wrap them for `cargo bench`. See EXPERIMENTS.md for the recorded
//! paper-vs-measured comparison.

#![warn(missing_docs)]

use std::sync::Arc;

use metaspace::{jobs, run_annotation, AnnotationReport, Architecture, JobSpec};

pub mod kernelbench;
pub mod render;
use serverful::executor::MapOptions;
use serverful::{
    Backend, CloudEnv, ExecMode, ExecutorConfig, FunctionExecutor, Payload, ScriptTask,
    SizingPolicy,
};
use shuffle::{seed_input, serverless_sort, vm_sort, SortConfig, SortReport};
use telemetry::UsageStats;

/// Results of Table 1: a 100×5 s CPU-bound map across three services.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1 {
    /// AWS-Lambda-like execution, seconds.
    pub lambda_secs: f64,
    /// EC2-like execution (m6a.32xlarge from a pre-built AMI), seconds.
    pub ec2_secs: f64,
    /// EMR-Serverless-like execution with default parameters, seconds.
    pub emr_secs: f64,
}

/// Paper values for Table 1.
pub const TABLE1_PAPER: Table1 = Table1 {
    lambda_secs: 12.56,
    ec2_secs: 42.34,
    emr_secs: 134.87,
};

/// Runs Table 1: 100 CPU-bound functions of five seconds each, measured
/// end to end including resource (de)provisioning.
pub fn table1(seed: u64) -> Table1 {
    let five_second_task: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .compute(5.0)
            .finish_value(Payload::Unit)
            .boxed()
    });
    let inputs = || (0..100).map(Payload::U64).collect::<Vec<_>>();

    // AWS Lambda, 1769 MB per function.
    let mut env = CloudEnv::new_default(seed);
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let job = exec.map_with(
        &mut env,
        five_second_task.clone(),
        inputs(),
        MapOptions::named("table1-lambda"),
    );
    exec.get_result(&mut env, job).expect("lambda map");
    let lambda_secs = env.now().as_secs_f64();

    // EC2: one m6a.32xlarge (128 vCPUs) created from a pre-built AMI,
    // torn down afterwards (times include provisioning/deprovisioning).
    let mut env = CloudEnv::new_default(seed);
    let mut cfg = ExecutorConfig::default();
    cfg.standalone.instance_override = Some("m6a.32xlarge".to_owned());
    cfg.standalone.reuse_instances = false;
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);
    let job = exec.map_with(
        &mut env,
        five_second_task,
        inputs(),
        MapOptions::named("table1-ec2"),
    );
    exec.get_result(&mut env, job).expect("ec2 map");
    let ec2_secs = env.now().as_secs_f64();

    // EMR Serverless with default execution parameters.
    let mut world = cloudsim::World::new(cloudsim::CloudConfig::default(), seed);
    let emr_job = world.emr_submit(100, 5.0);
    let emr_secs = loop {
        match world.step() {
            Some((t, cloudsim::Notify::EmrDone { job })) if job == emr_job => {
                break t.as_secs_f64()
            }
            Some(_) => continue,
            None => unreachable!("EMR job never finished"),
        }
    };

    Table1 {
        lambda_secs,
        ec2_secs,
        emr_secs,
    }
}

/// Table 2 is the job characterisation itself.
pub fn table2() -> Vec<JobSpec> {
    jobs::all()
}

/// Results of Table 3: CPU usage of the Xenograft annotation on cloud
/// functions vs the Spark cluster.
#[derive(Debug, Clone, Copy)]
pub struct Table3 {
    /// Cloud-functions deployment statistics.
    pub cloud_functions: UsageStats,
    /// Spark-cluster deployment statistics.
    pub spark: UsageStats,
}

/// Paper values for Table 3 (percent).
pub const TABLE3_PAPER: [(&str, f64, f64); 5] = [
    ("average", 72.76, 53.53),
    ("std-dev", 19.02, 42.19),
    ("maximum", 99.99, 99.43),
    ("minimum", 35.58, 0.43),
    ("stateful-average", 40.57, 17.68),
];

/// Runs Table 3: Xenograft on both deployments, sampling CPU usage.
pub fn table3(seed: u64) -> Table3 {
    let job = jobs::xenograft();
    let cf = run_annotation(&job, Architecture::Serverless, seed).expect("serverless run");
    let sp = run_annotation(&job, Architecture::Cluster, seed).expect("cluster run");
    Table3 {
        cloud_functions: cf.cpu.expect("cf usage stats"),
        spark: sp.cpu.expect("spark usage stats"),
    }
}

/// One Table 4 row: a job on all three architectures.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// The job.
    pub job: JobSpec,
    /// Cloud-functions run.
    pub cloud_functions: AnnotationReport,
    /// Hybrid run.
    pub hybrid: AnnotationReport,
    /// Spark run.
    pub spark: AnnotationReport,
}

/// Paper values for Table 4 (seconds): (job, CF, hybrid, Spark).
pub const TABLE4_PAPER: [(&str, f64, f64, f64); 3] = [
    ("Brain", 152.20, 105.49, 54.83),
    ("Xenograft", 351.57, 398.70, 889.54),
    ("X089", 488.86, 709.14, 2582.66),
];

/// Paper values for Figure 4 (dollars, approximate read-offs): the paper
/// states CF costs ≈2× Spark for typical jobs and up to ≈4× for
/// demanding ones.
pub const FIG4_PAPER_RATIO: [(&str, f64); 3] =
    [("Brain", 1.5), ("Xenograft", 2.0), ("X089", 4.0)];

/// Runs one Table 4 row.
pub fn table4_row(job: &JobSpec, seed: u64) -> Table4Row {
    Table4Row {
        job: job.clone(),
        cloud_functions: run_annotation(job, Architecture::Serverless, seed)
            .expect("serverless run"),
        hybrid: run_annotation(job, Architecture::Hybrid, seed).expect("hybrid run"),
        spark: run_annotation(job, Architecture::Cluster, seed).expect("cluster run"),
    }
}

/// Runs all of Table 4 (also feeds Figures 3, 4 and 6).
pub fn table4(seed: u64) -> Vec<Table4Row> {
    jobs::all().iter().map(|j| table4_row(j, seed)).collect()
}

/// A barrier-vs-pipelined run of one job's hybrid deployment — the
/// `repro dag` experiment.
#[derive(Debug, Clone)]
pub struct DagComparison {
    /// Job name.
    pub job: String,
    /// The hybrid plan under classic BSP barriers.
    pub barrier: AnnotationReport,
    /// The same plan scheduled dependency-driven.
    pub pipelined: AnnotationReport,
    /// Stage-level dataflow edges as `(from, to)` index pairs.
    pub edges: Vec<(usize, usize)>,
}

/// Runs the job's hybrid deployment twice from the same seed — once
/// with stage barriers, once dependency-driven — and pairs the reports
/// with the pipeline's stage DAG. `smoke` shrinks the stage graph for
/// debug-fast CI gates.
///
/// # Errors
///
/// Propagates executor failures from either run.
pub fn dag_comparison(
    spec: &JobSpec,
    seed: u64,
    smoke: bool,
) -> Result<DagComparison, serverful::ExecError> {
    use metaspace::plan::{DeploymentPlan, PlanKind};

    let stages = if smoke {
        metaspace::pipeline::scaled_stages(spec, 0.02)
    } else {
        metaspace::pipeline::stages(spec)
    };
    let barrier_plan = DeploymentPlan::hybrid(&stages);
    let PlanKind::Functions(f) = &barrier_plan.kind else {
        unreachable!("hybrid is a functions plan")
    };
    let pipelined_plan = DeploymentPlan::functions(
        "hybrid-pipelined",
        metaspace::plan::FunctionsPlan {
            execution: serverful::ExecutionMode::Pipelined,
            ..f.clone()
        },
    );
    let cloud = cloudsim::CloudConfig::default;
    let (barrier, _) =
        metaspace::run_plan_stages(spec.name, &stages, &barrier_plan, seed, cloud(), false)?;
    let (pipelined, _) =
        metaspace::run_plan_stages(spec.name, &stages, &pipelined_plan, seed, cloud(), false)?;
    let edges = metaspace::pipeline::edges(&stages)
        .iter()
        .enumerate()
        .flat_map(|(to, deps)| deps.iter().map(move |e| (e.from, to)))
        .collect();
    Ok(DagComparison {
        job: spec.name.to_owned(),
        barrier,
        pipelined,
        edges,
    })
}

/// A three-plan run of one workload description — the `repro workload`
/// experiment: the hybrid deployment under barriers and dependency-driven,
/// plus the pure-serverless baseline.
#[derive(Debug, Clone)]
pub struct WorkloadComparison {
    /// Workload name.
    pub name: String,
    /// The (possibly smoke-scaled) workload that actually ran.
    pub workload: workload::Workload,
    /// The hybrid plan under classic BSP barriers.
    pub hybrid_barrier: AnnotationReport,
    /// The same hybrid plan scheduled dependency-driven.
    pub hybrid_pipelined: AnnotationReport,
    /// Everything on cloud functions, under barriers.
    pub serverless: AnnotationReport,
    /// Stage-level dataflow edges as `(from, to)` index pairs.
    pub edges: Vec<(usize, usize)>,
}

/// Runs a workload description three times from the same seed — hybrid
/// barrier, hybrid pipelined, pure serverless — and pairs the reports
/// with the declared stage DAG. `smoke` shrinks the graph (~2% task
/// volume, floor of two tasks per stage) for debug-fast CI gates.
///
/// # Errors
///
/// Propagates validation and executor failures from any run.
pub fn workload_comparison(
    w: &workload::Workload,
    seed: u64,
    smoke: bool,
) -> Result<WorkloadComparison, serverful::ExecError> {
    use metaspace::plan::{DeploymentPlan, PlanKind};

    let w = if smoke {
        w.scaled_with(
            0.02,
            &workload::ScaleOptions {
                min_tasks: 2,
                ..workload::ScaleOptions::default()
            },
        )
    } else {
        w.clone()
    };
    let hybrid = DeploymentPlan::hybrid(&w.stages);
    let PlanKind::Functions(f) = &hybrid.kind else {
        unreachable!("hybrid is a functions plan")
    };
    let pipelined_plan = DeploymentPlan::functions(
        "hybrid-pipelined",
        metaspace::plan::FunctionsPlan {
            execution: serverful::ExecutionMode::Pipelined,
            ..f.clone()
        },
    );
    let serverless_plan = DeploymentPlan::serverless(&w.stages);
    let cloud = cloudsim::CloudConfig::default;
    let (hybrid_barrier, _) = metaspace::run_workload(&w, &hybrid, seed, cloud(), false)?;
    let (hybrid_pipelined, _) = metaspace::run_workload(&w, &pipelined_plan, seed, cloud(), false)?;
    let (serverless, _) = metaspace::run_workload(&w, &serverless_plan, seed, cloud(), false)?;
    Ok(WorkloadComparison {
        name: w.name.clone(),
        edges: w.edge_pairs(),
        workload: w,
        hybrid_barrier,
        hybrid_pipelined,
        serverless,
    })
}

/// Runs Figure 2: per-stage concurrency of the serverless Xenograft
/// annotation. Returns `(stage, tasks, stateful, measured seconds)`.
pub fn fig2(seed: u64) -> Vec<(String, usize, bool, f64)> {
    let report = run_annotation(&jobs::xenograft(), Architecture::Serverless, seed)
        .expect("serverless run");
    report
        .stages
        .iter()
        .map(|s| (s.name.clone(), s.tasks, s.stateful, s.secs))
        .collect()
}

/// Results of Figure 5: the Xenograft distributed sort on both
/// architectures.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// Serverless sort (37 × 1769 MB functions).
    pub serverless: SortReport,
    /// Single-VM sort (m4.4xlarge).
    pub vm: SortReport,
}

/// Paper values for Figure 5: serverless 1.28× faster; the VM ~15×
/// cheaper overall (I/O time charged $0.75 vs $0.05).
pub const FIG5_PAPER_SPEEDUP: f64 = 1.28;
/// Paper's quoted VM-vs-serverless cost advantage ("17 times cheaper").
pub const FIG5_PAPER_COST_RATIO: f64 = 17.0;

/// Runs Figure 5 in fresh, identically seeded regions.
pub fn fig5(seed: u64) -> Fig5 {
    let cfg = SortConfig::xenograft();

    let mut env = CloudEnv::new_default(seed);
    let refs = seed_input(&mut env, &cfg);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let serverless = serverless_sort(&mut env, &mut faas, &cfg, &refs).expect("serverless sort");

    let mut env = CloudEnv::new_default(seed);
    let refs = seed_input(&mut env, &cfg);
    let mut vm_exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let vm = vm_sort(&mut env, &mut vm_exec, &cfg, &refs, &SizingPolicy::default())
        .expect("vm sort");

    Fig5 { serverless, vm }
}

/// An ablation: the same map on the VM backend with and without
/// proactive instance reuse, isolating what "use existing, previously
/// configured VMs" buys.
pub fn ablation_reuse(seed: u64) -> (f64, f64) {
    let duration_of = |reuse: bool| {
        let mut env = CloudEnv::new_default(seed);
        let mut cfg = ExecutorConfig::default();
        cfg.standalone.reuse_instances = reuse;
        cfg.standalone.exec_mode = ExecMode::Consolidated;
        let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), cfg);
        let factory: serverful::job::TaskFactory = Arc::new(|_| {
            ScriptTask::new()
                .compute(2.0)
                .finish_value(Payload::Unit)
                .boxed()
        });
        for i in 0..3 {
            let job = exec.map_with(
                &mut env,
                factory.clone(),
                (0..8).map(Payload::U64).collect(),
                MapOptions::named(format!("reuse-abl-{i}")),
            );
            exec.get_result(&mut env, job).expect("map");
        }
        exec.shutdown(&mut env);
        env.now().as_secs_f64()
    };
    (duration_of(true), duration_of(false))
}

/// An ablation: Lambda memory size vs wall time and cost for a fixed
/// CPU-bound map (the memory→vCPU mapping at work).
pub fn ablation_memory(seed: u64, mem_mb: u32) -> (f64, f64) {
    let mut env = CloudEnv::new_default(seed);
    let cfg = ExecutorConfig {
        runtime_memory_mb: mem_mb,
        ..ExecutorConfig::default()
    };
    let mut exec = FunctionExecutor::new(&mut env, Backend::faas(), cfg);
    let factory: serverful::job::TaskFactory = Arc::new(|_| {
        ScriptTask::new()
            .compute(5.0)
            .finish_value(Payload::Unit)
            .boxed()
    });
    let job = exec.map_with(
        &mut env,
        factory,
        (0..50).map(Payload::U64).collect(),
        MapOptions::named("memory-abl"),
    );
    exec.get_result(&mut env, job).expect("map");
    (env.now().as_secs_f64(), env.world().ledger().total())
}

/// An ablation: the Figure 5 serverless sort under different per-prefix
/// storage bandwidths — where does the serverless speed edge go?
pub fn ablation_prefix_bandwidth(seed: u64, per_prefix_bps: f64) -> SortReport {
    let cfg = SortConfig::xenograft();
    let mut cloud = cloudsim::CloudConfig::default();
    cloud.storage.per_prefix_bps = per_prefix_bps;
    let mut env = CloudEnv::new(cloud, seed);
    let refs = seed_input(&mut env, &cfg);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    serverless_sort(&mut env, &mut faas, &cfg, &refs).expect("serverless sort")
}

/// One point of the fault-rate ablation: the same map on both backends
/// under seeded fault injection at a given base rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultRatePoint {
    /// FaaS map wall-clock, seconds.
    pub faas_wall_secs: f64,
    /// FaaS map billed dollars.
    pub faas_cost_usd: f64,
    /// VM map wall-clock, seconds.
    pub vm_wall_secs: f64,
    /// VM map billed dollars.
    pub vm_cost_usd: f64,
    /// Total retries (task + storage + straggler) across both runs.
    pub retries: u64,
    /// Total faults injected across both runs.
    pub faults_injected: u64,
}

/// An ablation: a 40-task × 1 s map on both backends under fault
/// injection at `rate` (see [`cloudsim::FaultConfig::at_rate`]),
/// measuring what retries cost in wall-clock and dollars. `rate` 0 is
/// the fault-free baseline.
pub fn ablation_fault_rate(seed: u64, rate: f64) -> FaultRatePoint {
    let factory = || -> serverful::job::TaskFactory {
        Arc::new(|_| {
            ScriptTask::new()
                .compute(1.0)
                .finish_value(Payload::Unit)
                .boxed()
        })
    };
    let cloud = || cloudsim::CloudConfig {
        faults: cloudsim::FaultConfig::at_rate(rate),
        ..cloudsim::CloudConfig::default()
    };

    let mut env = CloudEnv::new(cloud(), seed);
    let mut faas = FunctionExecutor::new(&mut env, Backend::faas(), ExecutorConfig::default());
    let job = faas.map_with(
        &mut env,
        factory(),
        (0..40).map(Payload::U64).collect(),
        MapOptions::named("fault-abl-faas"),
    );
    faas.get_result(&mut env, job).expect("faas map under faults");
    let faas_wall_secs = env.now().as_secs_f64();
    let faas_cost_usd = env.world().ledger().total();
    let faas_ledger = env.world().fault_ledger().clone();

    let mut env = CloudEnv::new(cloud(), seed);
    let mut vm = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    let job = vm.map_with(
        &mut env,
        factory(),
        (0..40).map(Payload::U64).collect(),
        MapOptions::named("fault-abl-vm"),
    );
    vm.get_result(&mut env, job).expect("vm map under faults");
    vm.shutdown(&mut env);
    let vm_wall_secs = env.now().as_secs_f64();
    let vm_cost_usd = env.world().ledger().total();
    let vm_ledger = env.world().fault_ledger().clone();

    FaultRatePoint {
        faas_wall_secs,
        faas_cost_usd,
        vm_wall_secs,
        vm_cost_usd,
        retries: faas_ledger.total_retries() + vm_ledger.total_retries(),
        faults_injected: faas_ledger.total_injected() + vm_ledger.total_injected(),
    }
}

/// The paper's closing extension ("AWS EC2 offers instances with tens of
/// terabytes of memory... We could virtually sort datasets of thousands
/// of GBs within serverful components, vertically scaling them to input
/// size"): sorts of growing volume on the serverful backend with the
/// sizing bound lifted, so the policy climbs the catalog up to the
/// 12 TiB u7i instance. Returns `(instance name, wall seconds, cost)`.
pub fn extension_huge_sort(seed: u64, total_gb: f64) -> (String, f64, f64) {
    let cfg = SortConfig {
        total_bytes: (total_gb * 1e9) as u64,
        chunks: (total_gb / 2.0).ceil().max(8.0) as usize,
        reducers: 64,
        key_prefix: "hugesort-".to_owned(),
        label: "huge-sort".to_owned(),
        ..SortConfig::default()
    };
    let mut env = CloudEnv::new_default(seed);
    let refs = seed_input(&mut env, &cfg);
    let mut exec = FunctionExecutor::new(&mut env, Backend::vm(), ExecutorConfig::default());
    // Lift the empirical bound: vertical scaling all the way up.
    let sizing = SizingPolicy {
        max_instance_mem_gib: f64::INFINITY,
        ..SizingPolicy::default()
    };
    let itype = sizing.choose(cfg.total_bytes);
    let report = vm_sort(&mut env, &mut exec, &cfg, &refs, &sizing).expect("huge sort");
    (itype.name.to_owned(), report.wall_secs, report.cost_usd)
}

/// A minimal timing harness for the `harness = false` benches (the
/// offline build environment has no Criterion; these print comparable
/// per-iteration statistics).
pub mod harness {
    use std::time::Instant;

    /// Times `iters` calls of `f` (plus one untimed warm-up) and prints
    /// mean/min/max wall milliseconds. `f` receives a 1-based iteration
    /// index usable as a seed.
    pub fn run_bench<R>(name: &str, iters: u64, mut f: impl FnMut(u64) -> R) {
        std::hint::black_box(f(0));
        let mut times = Vec::with_capacity(iters as usize);
        for i in 1..=iters {
            let t = Instant::now();
            std::hint::black_box(f(i));
            times.push(t.elapsed().as_secs_f64() * 1e3);
        }
        times.sort_by(f64::total_cmp);
        let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
        println!(
            "{name:<52} mean {mean:>10.3} ms  min {:>10.3} ms  max {:>10.3} ms  (n={iters})",
            times[0],
            times[times.len() - 1],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_holds() {
        let t = table1(3);
        // Lambda fastest, EC2 burdened by boot, EMR by startup.
        assert!(t.lambda_secs < t.ec2_secs);
        assert!(t.ec2_secs < t.emr_secs);
        // Within a factor of ~1.6 of the paper's absolutes.
        assert!((t.lambda_secs / TABLE1_PAPER.lambda_secs - 1.0).abs() < 0.6);
        assert!((t.ec2_secs / TABLE1_PAPER.ec2_secs - 1.0).abs() < 0.6);
        assert!((t.emr_secs / TABLE1_PAPER.emr_secs - 1.0).abs() < 0.6);
    }

    #[test]
    fn fig5_shape_holds() {
        let f = fig5(3);
        assert!(f.serverless.wall_secs < f.vm.wall_secs, "serverless is faster");
        assert!(f.vm.cost_usd < f.serverless.cost_usd / 2.0, "the VM is much cheaper");
    }

    #[test]
    fn extension_huge_sort_scales_vertically() {
        // 300 GB needs ~750 GiB of memory: r5.24xlarge territory.
        let (itype, wall, cost) = extension_huge_sort(3, 300.0);
        assert_eq!(itype, "r5.24xlarge");
        assert!(wall > 0.0 && cost > 0.0);
    }

    #[test]
    fn ablation_reuse_saves_boots() {
        let (with_reuse, without) = ablation_reuse(3);
        assert!(
            with_reuse < without - 30.0,
            "reuse {with_reuse} vs fresh {without}"
        );
    }

    #[test]
    fn ablation_memory_trades_time_for_cost() {
        let (t_small, _) = ablation_memory(3, 885); // ~0.5 vCPU
        let (t_full, _) = ablation_memory(3, 1769); // 1 vCPU
        assert!(t_small > t_full + 3.0, "{t_small} vs {t_full}");
    }
}
