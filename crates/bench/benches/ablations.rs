//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! proactive instance reuse, the Lambda memory→vCPU mapping, and the
//! storage per-prefix bandwidth behind the serverless sort hindrance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{ablation_memory, ablation_prefix_bandwidth, ablation_reuse};

fn bench_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-instance-reuse");
    group.sample_size(10);
    group.bench_function("reuse-vs-fresh", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(ablation_reuse(seed))
        });
    });
    group.finish();
}

fn bench_memory(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-lambda-memory");
    group.sample_size(10);
    for mem in [885u32, 1769, 3538] {
        group.bench_with_input(BenchmarkId::new("mb", mem), &mem, |b, &mem| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(ablation_memory(seed, mem))
            });
        });
    }
    group.finish();
}

fn bench_prefix_bandwidth(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation-prefix-bandwidth");
    group.sample_size(10);
    for bw_mb in [250u64, 500, 1000, 2000] {
        group.bench_with_input(BenchmarkId::new("mbps", bw_mb), &bw_mb, |b, &bw| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(ablation_prefix_bandwidth(seed, bw as f64 * 1e6))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reuse, bench_memory, bench_prefix_bandwidth);
criterion_main!(benches);
