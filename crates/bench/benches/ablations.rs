//! Ablation benchmarks for the design choices DESIGN.md calls out:
//! proactive instance reuse, the Lambda memory→vCPU mapping, the storage
//! per-prefix bandwidth behind the serverless sort hindrance, and the
//! fault-rate sweep showing what retries cost under injected failures.

use bench::harness::run_bench;
use bench::{
    ablation_fault_rate, ablation_memory, ablation_prefix_bandwidth, ablation_reuse,
    FaultRatePoint,
};

fn main() {
    run_bench("ablation-instance-reuse/reuse-vs-fresh", 10, ablation_reuse);
    for mem in [885u32, 1769, 3538] {
        run_bench(&format!("ablation-lambda-memory/mb/{mem}"), 10, |seed| {
            ablation_memory(seed, mem)
        });
    }
    for bw_mb in [250u64, 500, 1000, 2000] {
        run_bench(&format!("ablation-prefix-bandwidth/mbps/{bw_mb}"), 10, |seed| {
            ablation_prefix_bandwidth(seed, bw_mb as f64 * 1e6)
        });
    }
    // Fault-rate sweep: how injected failures move cost and wall-clock
    // once the executor retries them (Table 1-style map on both
    // backends). Printed per point because the simulated deltas — not
    // the harness time — are the interesting output here.
    println!();
    println!("fault-rate sweep (faas map + vm map, 40 tasks x 1 s):");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>12} {:>9} {:>9}",
        "rate", "faas wall s", "faas cost", "vm wall s", "vm cost", "retries", "faults"
    );
    for rate in [0.0, 0.02, 0.05, 0.10, 0.20] {
        let FaultRatePoint {
            faas_wall_secs,
            faas_cost_usd,
            vm_wall_secs,
            vm_cost_usd,
            retries,
            faults_injected,
        } = ablation_fault_rate(7, rate);
        println!(
            "{rate:>8.2} {faas_wall_secs:>12.2} {faas_cost_usd:>12.6} {vm_wall_secs:>12.2} \
             {vm_cost_usd:>12.6} {retries:>9} {faults_injected:>9}"
        );
    }
}
