//! One benchmark per paper table/figure: each iteration regenerates the
//! experiment end-to-end on the simulated substrate. The measured
//! quantity is harness time (how long the reproduction takes to run),
//! not the simulated times themselves — those are what the `repro`
//! binary prints and EXPERIMENTS.md records.

use bench::harness::run_bench;
use bench::{fig2, fig5, table1, table3, table4_row};
use metaspace::{jobs, run_annotation, Architecture};

fn main() {
    run_bench("table1-elastic-map/all-services", 10, table1);
    run_bench("table3-cpu-usage/xenograft-both-deployments", 10, table3);
    // Also regenerates Figures 3, 4 and 6 (they are views of these runs).
    for job in jobs::all() {
        run_bench(
            &format!("table4-annotation/all-architectures/{}", job.name),
            10,
            |seed| table4_row(&job, seed),
        );
    }
    run_bench("fig2-stage-concurrency/xenograft-serverless", 10, fig2);
    run_bench("fig5-sort/serverless-vs-vm", 10, fig5);
    // Per-architecture Brain runs: the cheapest end-to-end pipeline,
    // useful for tracking simulator performance regressions.
    let job = jobs::brain();
    for arch in [
        Architecture::Serverless,
        Architecture::Hybrid,
        Architecture::Cluster,
    ] {
        run_bench(&format!("brain-annotation/arch/{arch}"), 10, |seed| {
            run_annotation(&job, arch, seed).expect("run")
        });
    }
}
