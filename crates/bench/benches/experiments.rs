//! One Criterion benchmark per paper table/figure: each iteration
//! regenerates the experiment end-to-end on the simulated substrate.
//! The measured quantity is harness time (how long the reproduction
//! takes to run), not the simulated times themselves — those are what
//! the `repro` binary prints and EXPERIMENTS.md records.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bench::{fig2, fig5, table1, table3, table4_row};
use metaspace::{jobs, run_annotation, Architecture};

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1-elastic-map");
    group.sample_size(10);
    group.bench_function("all-services", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(table1(seed))
        });
    });
    group.finish();
}

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3-cpu-usage");
    group.sample_size(10);
    group.bench_function("xenograft-both-deployments", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(table3(seed))
        });
    });
    group.finish();
}

fn bench_table4(c: &mut Criterion) {
    // Also regenerates Figures 3, 4 and 6 (they are views of these runs).
    let mut group = c.benchmark_group("table4-annotation");
    group.sample_size(10);
    for job in jobs::all() {
        group.bench_with_input(
            BenchmarkId::new("all-architectures", job.name),
            &job,
            |b, job| {
                let mut seed = 0;
                b.iter(|| {
                    seed += 1;
                    black_box(table4_row(job, seed))
                });
            },
        );
    }
    group.finish();
}

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2-stage-concurrency");
    group.sample_size(10);
    group.bench_function("xenograft-serverless", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig2(seed))
        });
    });
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5-sort");
    group.sample_size(10);
    group.bench_function("serverless-vs-vm", |b| {
        let mut seed = 0;
        b.iter(|| {
            seed += 1;
            black_box(fig5(seed))
        });
    });
    group.finish();
}

fn bench_single_architectures(c: &mut Criterion) {
    // Per-architecture Brain runs: the cheapest end-to-end pipeline,
    // useful for tracking simulator performance regressions.
    let mut group = c.benchmark_group("brain-annotation");
    group.sample_size(10);
    let job = jobs::brain();
    for arch in [
        Architecture::Serverless,
        Architecture::Hybrid,
        Architecture::Cluster,
    ] {
        group.bench_with_input(BenchmarkId::new("arch", arch), &arch, |b, &arch| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(run_annotation(&job, arch, seed).expect("run"))
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_table1,
    bench_table3,
    bench_table4,
    bench_fig2,
    bench_fig5,
    bench_single_architectures
);
criterion_main!(benches);
