//! Micro-benchmarks of the simulation substrate: how fast the kernel
//! processes events, shares bandwidth and round-trips payloads. These
//! bound how large a cloud scenario the reproduction can simulate.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use serverful::Payload;
use simkernel::{EventQueue, FairShare, SimDuration, SimRng, SimTime, StepSeries};

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event-queue");
    group.bench_function("schedule+pop 10k", |b| {
        b.iter_batched(
            || {
                let mut rng = SimRng::seed_from(1);
                (0..10_000u64)
                    .map(|_| rng.uniform_u64(0, 1_000_000))
                    .collect::<Vec<_>>()
            },
            |delays| {
                let mut q: EventQueue<u64> = EventQueue::new();
                for (i, d) in delays.iter().enumerate() {
                    q.schedule_at(SimTime::from_micros(*d), i as u64);
                }
                let mut n = 0;
                while q.next().is_some() {
                    n += 1;
                }
                black_box(n)
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("cancel-heavy", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let tokens: Vec<_> = (0..1000)
                .map(|i| q.schedule_in(SimDuration::from_micros(i), i))
                .collect();
            for tok in tokens.iter().step_by(2) {
                q.cancel(*tok);
            }
            let mut n = 0;
            while q.next().is_some() {
                n += 1;
            }
            black_box(n)
        });
    });
    group.finish();
}

fn bench_fair_share(c: &mut Criterion) {
    c.bench_function("fair-share 500 contending flows", |b| {
        b.iter(|| {
            let mut pool = FairShare::new(1e9, 85e6);
            pool.set_group_cap(1, 5e8);
            let t0 = SimTime::ZERO;
            for i in 0..500u64 {
                pool.start(t0, 1_000_000 + i, &[1]);
            }
            let mut now = t0;
            while pool.active() > 0 {
                now = pool.next_completion().expect("completion");
                black_box(pool.advance(now).len());
            }
            black_box(now)
        });
    });
}

fn bench_payload_codec(c: &mut Criterion) {
    let payload = Payload::List(
        (0..64)
            .map(|i| {
                Payload::List(vec![
                    Payload::U64(i),
                    Payload::Str(format!("key-{i}")),
                    Payload::F64(i as f64 * 0.5),
                ])
            })
            .collect(),
    );
    let encoded = payload.encode();
    c.bench_function("payload encode 64x3", |b| {
        b.iter(|| black_box(payload.encode()));
    });
    c.bench_function("payload decode 64x3", |b| {
        b.iter(|| black_box(Payload::decode(&encoded).expect("decode")));
    });
}

fn bench_step_series(c: &mut Criterion) {
    let mut series = StepSeries::new(0.0);
    for i in 0..10_000u64 {
        series.set(SimTime::from_micros(i * 100), (i % 64) as f64);
    }
    c.bench_function("step-series integral over 10k points", |b| {
        b.iter(|| {
            black_box(series.integral(SimTime::ZERO, SimTime::from_micros(1_000_000)))
        });
    });
    c.bench_function("step-series 1k samples", |b| {
        b.iter(|| {
            black_box(series.sample(
                SimTime::ZERO,
                SimTime::from_micros(1_000_000),
                SimDuration::from_micros(1_000),
            ))
        });
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fair_share,
    bench_payload_codec,
    bench_step_series
);
criterion_main!(benches);
