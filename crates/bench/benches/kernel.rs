//! Micro-benchmarks of the simulation substrate: how fast the kernel
//! processes events, shares bandwidth and round-trips payloads. These
//! bound how large a cloud scenario the reproduction can simulate.

use std::hint::black_box;

use bench::harness::run_bench;
use serverful::Payload;
use simkernel::{EventQueue, FairShare, SimDuration, SimRng, SimTime, StepSeries};

fn bench_event_queue() {
    run_bench("event-queue/schedule+pop 10k", 50, |seed| {
        let mut rng = SimRng::seed_from(seed);
        let delays: Vec<u64> = (0..10_000).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        let mut q: EventQueue<u64> = EventQueue::new();
        for (i, d) in delays.iter().enumerate() {
            q.schedule_at(SimTime::from_micros(*d), i as u64);
        }
        let mut n = 0;
        while q.next().is_some() {
            n += 1;
        }
        n
    });
    run_bench("event-queue/cancel-heavy", 50, |_| {
        let mut q: EventQueue<u64> = EventQueue::new();
        let tokens: Vec<_> = (0..1000)
            .map(|i| q.schedule_in(SimDuration::from_micros(i), i))
            .collect();
        for tok in tokens.iter().step_by(2) {
            q.cancel(*tok);
        }
        let mut n = 0;
        while q.next().is_some() {
            n += 1;
        }
        n
    });
}

fn bench_fair_share() {
    run_bench("fair-share/500 contending flows", 50, |_| {
        let mut pool = FairShare::new(1e9, 85e6);
        pool.set_group_cap(1, 5e8);
        let t0 = SimTime::ZERO;
        for i in 0..500u64 {
            pool.start(t0, 1_000_000 + i, &[1]);
        }
        let mut now = t0;
        while pool.active() > 0 {
            now = pool.next_completion().expect("completion");
            black_box(pool.advance(now).len());
        }
        now
    });
}

fn bench_payload_codec() {
    let payload = Payload::List(
        (0..64)
            .map(|i| {
                Payload::List(vec![
                    Payload::U64(i),
                    Payload::Str(format!("key-{i}")),
                    Payload::F64(i as f64 * 0.5),
                ])
            })
            .collect(),
    );
    let encoded = payload.encode();
    run_bench("payload/encode 64x3", 200, |_| payload.encode());
    run_bench("payload/decode 64x3", 200, |_| {
        Payload::decode(&encoded).expect("decode")
    });
}

fn bench_step_series() {
    let mut series = StepSeries::new(0.0);
    for i in 0..10_000u64 {
        series.set(SimTime::from_micros(i * 100), (i % 64) as f64);
    }
    run_bench("step-series/integral over 10k points", 200, |_| {
        series.integral(SimTime::ZERO, SimTime::from_micros(1_000_000))
    });
    run_bench("step-series/1k samples", 200, |_| {
        series.sample(
            SimTime::ZERO,
            SimTime::from_micros(1_000_000),
            SimDuration::from_micros(1_000),
        )
    });
}

fn main() {
    bench_event_queue();
    bench_fair_share();
    bench_payload_codec();
    bench_step_series();
}
