//! The annotation algorithms, for real.
//!
//! A faithful (if simplified) reimplementation of the METASPACE
//! annotation method (Palmer et al., Nature Methods 2017):
//!
//! 1. **Dataset segmentation** — all peaks of all pixels are flattened,
//!    sorted by m/z and split into contiguous m/z segments (this is the
//!    stateful sort/partition the paper moves onto VMs).
//! 2. **Database segmentation** — formulas sorted and split by their
//!    pattern's m/z span so each database segment only meets the dataset
//!    segments it can overlap.
//! 3. **Pattern matching** — for each formula, its isotopic envelope is
//!    looked up in the dataset segment within a ppm tolerance; a
//!    metabolite-signal match score (MSM-like) combines spectral
//!    presence, envelope correlation and spatial presence.
//! 4. **FDR control** — target formulas are accepted at the largest
//!    score threshold where the decoy/target ratio stays below the
//!    requested FDR.

use crate::data::{Dataset, Formula, Peak};

/// One peak tagged with the pixel it came from.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlatPeak {
    /// m/z of the peak.
    pub mz: f64,
    /// Intensity.
    pub intensity: f32,
    /// Pixel index in the dataset.
    pub pixel: u32,
}

/// A contiguous m/z range of the flattened, sorted dataset.
#[derive(Debug, Clone, Default)]
pub struct DatasetSegment {
    /// Peaks sorted by m/z.
    pub peaks: Vec<FlatPeak>,
}

impl DatasetSegment {
    /// The m/z bounds `[lo, hi]` of the segment (`None` when empty).
    pub fn mz_bounds(&self) -> Option<(f64, f64)> {
        Some((self.peaks.first()?.mz, self.peaks.last()?.mz))
    }

    /// Peaks with m/z in `[lo, hi]`, by binary search.
    pub fn peaks_in(&self, lo: f64, hi: f64) -> &[FlatPeak] {
        let start = self.peaks.partition_point(|p| p.mz < lo);
        let end = self.peaks.partition_point(|p| p.mz <= hi);
        &self.peaks[start..end]
    }
}

/// Flattens, sorts and splits the dataset into `segments` equal-count
/// m/z segments — the pipeline's stateful dataset operation.
///
/// # Panics
///
/// Panics if `segments` is zero.
pub fn segment_dataset(dataset: &Dataset, segments: usize) -> Vec<DatasetSegment> {
    assert!(segments > 0, "need at least one segment");
    let mut flat: Vec<FlatPeak> = dataset
        .pixels
        .iter()
        .enumerate()
        .flat_map(|(px, s)| {
            s.peaks.iter().map(move |&Peak { mz, intensity }| FlatPeak {
                mz,
                intensity,
                pixel: px as u32,
            })
        })
        .collect();
    flat.sort_by(|a, b| a.mz.total_cmp(&b.mz));
    let per = flat.len().div_ceil(segments).max(1);
    let mut out: Vec<DatasetSegment> = flat
        .chunks(per)
        .map(|c| DatasetSegment { peaks: c.to_vec() })
        .collect();
    out.resize_with(segments, DatasetSegment::default);
    out
}

/// Sorts formulas by base m/z and splits them into `segments` groups —
/// the pipeline's stateful database operation.
///
/// # Panics
///
/// Panics if `segments` is zero.
pub fn segment_db(db: &[Formula], segments: usize) -> Vec<Vec<Formula>> {
    assert!(segments > 0, "need at least one segment");
    let mut sorted = db.to_vec();
    sorted.sort_by(|a, b| a.base_mz.total_cmp(&b.base_mz));
    let per = sorted.len().div_ceil(segments).max(1);
    let mut out: Vec<Vec<Formula>> = sorted.chunks(per).map(<[Formula]>::to_vec).collect();
    out.resize_with(segments, Vec::new);
    out
}

/// The match evidence for one formula.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    /// The formula's id.
    pub formula_id: u32,
    /// Whether the formula is a decoy.
    pub decoy: bool,
    /// MSM-like score in `[0, 1]`.
    pub score: f64,
}

/// Matches one database segment against one dataset segment.
///
/// For each formula: every pattern peak is searched within `ppm`
/// tolerance; the score combines
/// * spectral presence (fraction of envelope peaks found),
/// * envelope correlation (found intensities vs predicted, cosine), and
/// * spatial presence (fraction of pixels containing the principal
///   peak).
pub fn annotate_segment(
    ds_segment: &DatasetSegment,
    db_segment: &[Formula],
    total_pixels: usize,
    ppm: f64,
) -> Vec<Annotation> {
    let mut out = Vec::new();
    let Some((seg_lo, seg_hi)) = ds_segment.mz_bounds() else {
        return out;
    };
    for formula in db_segment {
        // Skip formulas whose principal peak cannot live here.
        if formula.base_mz < seg_lo - 1.0 || formula.base_mz > seg_hi + 1.0 {
            continue;
        }
        let mut found = 0usize;
        let mut predicted = Vec::with_capacity(formula.pattern.len());
        let mut observed = Vec::with_capacity(formula.pattern.len());
        let mut principal_pixels: Vec<u32> = Vec::new();
        for (i, &(off, rel)) in formula.pattern.iter().enumerate() {
            let mz = formula.base_mz + off;
            let tol = mz * ppm * 1e-6;
            let peaks = ds_segment.peaks_in(mz - tol, mz + tol);
            predicted.push(rel as f64);
            if peaks.is_empty() {
                observed.push(0.0);
            } else {
                found += 1;
                observed.push(
                    peaks.iter().map(|p| p.intensity as f64).sum::<f64>()
                        / peaks.len() as f64,
                );
                if i == 0 {
                    principal_pixels = peaks.iter().map(|p| p.pixel).collect();
                    principal_pixels.sort_unstable();
                    principal_pixels.dedup();
                }
            }
        }
        let spectral = found as f64 / formula.pattern.len() as f64;
        let spatial = principal_pixels.len() as f64 / total_pixels.max(1) as f64;
        let corr = cosine(&predicted, &observed);
        let score = spectral * spatial.min(1.0) * corr;
        if score > 0.0 {
            out.push(Annotation {
                formula_id: formula.id,
                decoy: formula.decoy,
                score,
            });
        }
    }
    out
}

/// Cosine similarity of two vectors (0 when either is null).
fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// FDR-controlled selection: returns the accepted *target* annotations
/// at the given false-discovery rate, estimated with the decoy method
/// (`FDR ≈ #decoys_above / #targets_above`).
pub fn fdr_select(mut annotations: Vec<Annotation>, fdr: f64) -> Vec<Annotation> {
    assert!((0.0..=1.0).contains(&fdr), "FDR must be in [0, 1]");
    annotations.sort_by(|a, b| b.score.total_cmp(&a.score));
    let mut decoys = 0usize;
    let mut targets = 0usize;
    let mut cut = 0usize;
    for (i, ann) in annotations.iter().enumerate() {
        if ann.decoy {
            decoys += 1;
        } else {
            targets += 1;
        }
        if targets > 0 && decoys as f64 / targets as f64 <= fdr {
            cut = i + 1;
        }
    }
    annotations
        .into_iter()
        .take(cut)
        .filter(|a| !a.decoy)
        .collect()
}

/// Runs the full annotation end-to-end in memory (the reference
/// implementation the distributed pipeline is checked against).
pub fn annotate_reference(
    dataset: &Dataset,
    db: &[Formula],
    segments: usize,
    ppm: f64,
    fdr: f64,
) -> Vec<Annotation> {
    let ds_segments = segment_dataset(dataset, segments);
    let db_segments = segment_db(db, segments);
    let mut all = Vec::new();
    for ds_seg in &ds_segments {
        for db_seg in &db_segments {
            all.extend(annotate_segment(ds_seg, db_seg, dataset.pixels.len(), ppm));
        }
    }
    // A formula can straddle segments; keep its best evidence.
    all.sort_by(|a, b| {
        a.formula_id
            .cmp(&b.formula_id)
            .then(b.score.total_cmp(&a.score))
    });
    all.dedup_by_key(|a| a.formula_id);
    fdr_select(all, fdr)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{generate_dataset, generate_db, DatasetParams};
    use simkernel::SimRng;

    fn setup() -> (Dataset, Vec<Formula>) {
        let mut rng = SimRng::seed_from(99);
        let db = generate_db(&mut rng, 30);
        let params = DatasetParams {
            pixels: 48,
            noise_peaks: 40,
            presence: 0.8,
            jitter_ppm: 0.5,
        };
        let ds = generate_dataset(&mut rng, &params, &db);
        (ds, db)
    }

    #[test]
    fn segmentation_is_sorted_and_complete() {
        let (ds, _) = setup();
        let segs = segment_dataset(&ds, 8);
        assert_eq!(segs.len(), 8);
        let total: usize = segs.iter().map(|s| s.peaks.len()).sum();
        assert_eq!(total, ds.peak_count());
        // Globally ordered: each segment's max <= next segment's min.
        for pair in segs.windows(2) {
            if let (Some((_, hi)), Some((lo, _))) = (pair[0].mz_bounds(), pair[1].mz_bounds()) {
                assert!(hi <= lo);
            }
        }
        for seg in &segs {
            assert!(seg.peaks.windows(2).all(|w| w[0].mz <= w[1].mz));
        }
    }

    #[test]
    fn db_segmentation_partitions_all_formulas() {
        let (_, db) = setup();
        let segs = segment_db(&db, 4);
        assert_eq!(segs.iter().map(Vec::len).sum::<usize>(), db.len());
        for seg in &segs {
            assert!(seg.windows(2).all(|w| w[0].base_mz <= w[1].base_mz));
        }
    }

    #[test]
    fn peaks_in_uses_binary_search_bounds() {
        let seg = DatasetSegment {
            peaks: vec![
                FlatPeak { mz: 1.0, intensity: 1.0, pixel: 0 },
                FlatPeak { mz: 2.0, intensity: 1.0, pixel: 0 },
                FlatPeak { mz: 3.0, intensity: 1.0, pixel: 0 },
            ],
        };
        assert_eq!(seg.peaks_in(1.5, 2.5).len(), 1);
        assert_eq!(seg.peaks_in(0.0, 9.0).len(), 3);
        assert_eq!(seg.peaks_in(4.0, 5.0).len(), 0);
    }

    #[test]
    fn planted_targets_score_above_decoys() {
        let (ds, db) = setup();
        let segs = segment_dataset(&ds, 1);
        let anns = annotate_segment(&segs[0], &db, ds.pixels.len(), 3.0);
        let best_target = anns
            .iter()
            .filter(|a| !a.decoy)
            .map(|a| a.score)
            .fold(0.0, f64::max);
        let best_decoy = anns
            .iter()
            .filter(|a| a.decoy)
            .map(|a| a.score)
            .fold(0.0, f64::max);
        assert!(
            best_target > best_decoy * 2.0,
            "targets {best_target} vs decoys {best_decoy}"
        );
    }

    #[test]
    fn reference_annotation_finds_planted_formulas_controls_decoys() {
        let (ds, db) = setup();
        let accepted = annotate_reference(&ds, &db, 8, 3.0, 0.1);
        let targets = db.iter().filter(|f| !f.decoy).count();
        assert!(
            accepted.len() >= targets / 2,
            "expected most of the {targets} planted formulas, got {}",
            accepted.len()
        );
        assert!(accepted.iter().all(|a| !a.decoy));
    }

    #[test]
    fn fdr_zero_admits_only_top_run_of_targets() {
        let anns = vec![
            Annotation { formula_id: 1, decoy: false, score: 0.9 },
            Annotation { formula_id: 2, decoy: true, score: 0.8 },
            Annotation { formula_id: 3, decoy: false, score: 0.7 },
        ];
        let selected = fdr_select(anns, 0.0);
        assert_eq!(selected.len(), 1);
        assert_eq!(selected[0].formula_id, 1);
    }

    #[test]
    fn fdr_relaxation_admits_more() {
        let (ds, db) = setup();
        let strict = annotate_reference(&ds, &db, 4, 3.0, 0.01);
        let loose = annotate_reference(&ds, &db, 4, 3.0, 0.5);
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn segmented_equals_unsegmented_annotation() {
        let (ds, db) = setup();
        let one = annotate_reference(&ds, &db, 1, 3.0, 0.2);
        let many = annotate_reference(&ds, &db, 16, 3.0, 0.2);
        let ids = |v: &[Annotation]| {
            let mut ids: Vec<u32> = v.iter().map(|a| a.formula_id).collect();
            ids.sort_unstable();
            ids
        };
        // Segment boundaries can split an envelope; allow a small
        // difference but the bulk must agree.
        let a = ids(&one);
        let b = ids(&many);
        let common = a.iter().filter(|id| b.contains(id)).count();
        assert!(
            common as f64 >= 0.9 * a.len().max(b.len()) as f64,
            "segmented {} vs unsegmented {} (common {common})",
            b.len(),
            a.len()
        );
    }

    #[test]
    fn cosine_of_parallel_vectors_is_one() {
        assert!((cosine(&[1.0, 2.0], &[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert_eq!(cosine(&[1.0], &[0.0]), 0.0);
    }
}
