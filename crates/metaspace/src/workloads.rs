//! The combined bundled-workload catalog: every workload this
//! reproduction ships, resolvable by one name.
//!
//! Three sources merge here:
//!
//! * the Table 2 METASPACE jobs ([`crate::jobs`]), expressed as full
//!   workload descriptions through
//!   [`crate::pipeline::job_workload`] — addressable both by their job
//!   name (`brain`) and a `metaspace-` prefixed alias
//!   (`metaspace-brain`);
//! * the non-METASPACE families bundled in [`workload::catalog`]
//!   (`mlpipe`, `montage`, `terasort-small/medium/large`).
//!
//! The CLI (`repro workload`), the CI smoke gate and the fleet's
//! tenant specs all resolve through this module, so a name means the
//! same graph everywhere.

use crate::jobs;
use crate::pipeline;
use workload::Workload;

/// Every bundled workload name, in presentation order (METASPACE jobs
/// first, then the other families).
pub fn all_names() -> Vec<String> {
    let mut names: Vec<String> = jobs::all()
        .iter()
        .map(|j| format!("metaspace-{}", j.name.to_ascii_lowercase()))
        .collect();
    names.extend(workload::catalog::names().iter().map(|s| (*s).to_owned()));
    names
}

/// Resolves a bundled workload by (case-insensitive) name: a METASPACE
/// job name (`Brain`), its `metaspace-` alias (`metaspace-brain`), or a
/// [`workload::catalog`] family instance (`terasort-small`).
pub fn named(name: &str) -> Option<Workload> {
    let canon = name.to_ascii_lowercase();
    let job_name = canon.strip_prefix("metaspace-").unwrap_or(&canon);
    if let Some(job) = jobs::by_name(job_name) {
        return Some(pipeline::job_workload(&job));
    }
    workload::catalog::named(&canon)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_name_resolves_and_validates() {
        let names = all_names();
        assert_eq!(names.len(), 8, "3 METASPACE jobs + 5 family instances");
        for n in &names {
            let w = named(n).unwrap_or_else(|| panic!("{n} missing"));
            w.validate().unwrap_or_else(|e| panic!("{n}: {e}"));
        }
    }

    #[test]
    fn metaspace_jobs_resolve_by_both_names() {
        let a = named("brain").expect("job name");
        let b = named("metaspace-Brain").expect("alias");
        assert_eq!(a, b);
        assert_eq!(a.name, "Brain");
        assert_eq!(a.stages, pipeline::stages(&jobs::brain()));
    }

    #[test]
    fn unknown_names_resolve_to_none() {
        assert!(named("metaspace-nope").is_none());
        assert!(named("").is_none());
    }
}
