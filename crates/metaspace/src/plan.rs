//! Deployment plans: the paper's hand-tuned §4.3 choices, as data.
//!
//! The paper fixes one deployment by hand — stateless stages on cloud
//! functions, stateful operations on a right-sized VM, 1769 MB Lambdas,
//! the empirical 2.5× sizing factor — and evaluates it against a pure
//! cloud-functions deployment and the fixed Spark cluster. A
//! [`DeploymentPlan`] captures every one of those knobs so the three
//! studied architectures become three *named points* in a much larger
//! space that the `planner` crate searches:
//!
//! * per-stage backend assignment ([`StageBackend`]);
//! * serverful host instance type and fleet size;
//! * Lambda memory (the memory→vCPU mapping);
//! * sizing factor (memory demand per input byte → sequential rounds);
//! * retry budget.
//!
//! [`crate::runner::run_plan`] executes any plan in a fresh simulated
//! region; [`DeploymentPlan::for_architecture`] reproduces the paper's
//! three deployments exactly.

use std::fmt;

use serverful::{ExecutionMode, RecoveryMode};

use crate::pipeline::Stage;
use crate::runner::Architecture;

/// Which backend one pipeline stage runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum StageBackend {
    /// Cloud functions (Lambda-like sandboxes, storage-based exchange
    /// for stateful stages).
    Functions,
    /// The serverful VM pool (in-memory exchange through the master's
    /// KV store).
    Serverful,
}

impl StageBackend {
    /// Short stable code used in plan keys (`f`/`s`).
    pub fn code(self) -> char {
        match self {
            StageBackend::Functions => 'f',
            StageBackend::Serverful => 's',
        }
    }
}

/// A deployment built from cloud functions and (optionally) the
/// serverful backend — the family the paper's serverless and hybrid
/// architectures live in.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionsPlan {
    /// Backend of each stage, aligned index-for-index with the job's
    /// stage list ([`crate::pipeline::stages`]).
    pub backends: Vec<StageBackend>,
    /// Sandbox memory for the FaaS stages, MB (1769 MB = 1 vCPU).
    pub memory_mb: u32,
    /// Serverful host instance type; `None` lets the sizing policy pick
    /// from the catalog (the paper's "empirically defined bounds").
    pub instance: Option<String>,
    /// Number of serverful worker VMs. `1` is the paper's consolidated
    /// single right-sized host; larger fleets add a dedicated master.
    pub vm_count: usize,
    /// Memory demand as a multiple of input size (the paper's empirical
    /// 2–3×); drives instance choice and sequential-round splitting.
    pub mem_factor: f64,
    /// Attempts per task before the job fails (retry budget).
    pub max_attempts: u32,
    /// How the stage graph is scheduled: classic BSP barriers, or
    /// dependency-driven dataflow ([`ExecutionMode::Pipelined`]).
    pub execution: ExecutionMode,
    /// What happens if the serverful master VM dies mid-job:
    /// protected (the paper's assumption), checkpointed replay, or
    /// decentralized continuation-passing with no master in the data
    /// path. Irrelevant for pure-FaaS plans.
    pub recovery: RecoveryMode,
    /// Provider region to deploy in, as a `{provider}-{region}` registry
    /// key (see [`cloudsim::provider`]). `None` is the paper's
    /// `aws-us-east-1` with no spot market — byte-identical to the
    /// pre-provider behaviour.
    pub region: Option<String>,
    /// Bid for spot capacity on serverful worker slots (discounted but
    /// preemptible; masters stay on-demand). Meaningless without a
    /// serverful stage.
    pub spot: bool,
}

impl FunctionsPlan {
    /// Every stage on cloud functions (the deployment METASPACE migrated
    /// to first).
    pub fn serverless(n_stages: usize) -> FunctionsPlan {
        FunctionsPlan {
            backends: vec![StageBackend::Functions; n_stages],
            ..FunctionsPlan::defaults()
        }
    }

    /// The paper's hybrid: stateless stages on functions, stateful
    /// operations on the serverful backend.
    pub fn hybrid(stages: &[Stage]) -> FunctionsPlan {
        FunctionsPlan {
            backends: stages
                .iter()
                .map(|s| {
                    if s.is_stateful() {
                        StageBackend::Serverful
                    } else {
                        StageBackend::Functions
                    }
                })
                .collect(),
            ..FunctionsPlan::defaults()
        }
    }

    /// The knob defaults shared by the named plans (the paper's setup).
    fn defaults() -> FunctionsPlan {
        FunctionsPlan {
            backends: Vec::new(),
            memory_mb: 1769,
            instance: None,
            vm_count: 1,
            mem_factor: 2.5,
            max_attempts: serverful::RetryPolicy::default().max_attempts,
            execution: ExecutionMode::Barrier,
            recovery: RecoveryMode::Protected,
            region: None,
            spot: false,
        }
    }

    /// Whether any stage runs on the serverful backend.
    pub fn uses_serverful(&self) -> bool {
        self.backends.contains(&StageBackend::Serverful)
    }

    /// Whether any stage runs on cloud functions.
    pub fn uses_functions(&self) -> bool {
        self.backends.contains(&StageBackend::Functions)
    }
}

/// A fixed cluster deployment (the Spark baseline's family).
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterPlan {
    /// Node instance type (catalog name).
    pub instance: String,
    /// Number of nodes.
    pub nodes: usize,
}

impl ClusterPlan {
    /// The paper's METASPACE production cluster: 4 × c5.4xlarge.
    pub fn paper() -> ClusterPlan {
        ClusterPlan {
            instance: "c5.4xlarge".to_owned(),
            nodes: 4,
        }
    }
}

/// How a plan lays compute out.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanKind {
    /// Cloud functions, optionally with serverful stages.
    Functions(FunctionsPlan),
    /// A fixed cluster for the whole pipeline.
    Cluster(ClusterPlan),
}

/// One fully specified deployment: everything `run_plan` needs to
/// execute a job, and everything the planner searches over.
#[derive(Debug, Clone, PartialEq)]
pub struct DeploymentPlan {
    /// Human-readable name (`serverless`, `hybrid`, `spark`, or a
    /// search-generated key).
    pub name: String,
    /// The deployment itself.
    pub kind: PlanKind,
}

impl DeploymentPlan {
    /// Builds a named functions-family plan.
    pub fn functions(name: impl Into<String>, plan: FunctionsPlan) -> DeploymentPlan {
        DeploymentPlan {
            name: name.into(),
            kind: PlanKind::Functions(plan),
        }
    }

    /// Builds a named cluster-family plan.
    pub fn cluster_of(name: impl Into<String>, plan: ClusterPlan) -> DeploymentPlan {
        DeploymentPlan {
            name: name.into(),
            kind: PlanKind::Cluster(plan),
        }
    }

    /// The pure cloud-functions deployment, as a plan.
    pub fn serverless(stages: &[Stage]) -> DeploymentPlan {
        DeploymentPlan::functions("serverless", FunctionsPlan::serverless(stages.len()))
    }

    /// The paper's hybrid deployment, as a plan.
    pub fn hybrid(stages: &[Stage]) -> DeploymentPlan {
        DeploymentPlan::functions("hybrid", FunctionsPlan::hybrid(stages))
    }

    /// The fixed Spark cluster, as a plan.
    pub fn cluster() -> DeploymentPlan {
        DeploymentPlan::cluster_of("spark", ClusterPlan::paper())
    }

    /// The named plan equivalent to one of the three studied
    /// architectures on the given stage graph.
    pub fn for_architecture(arch: Architecture, stages: &[Stage]) -> DeploymentPlan {
        match arch {
            Architecture::Serverless => DeploymentPlan::serverless(stages),
            Architecture::Hybrid => DeploymentPlan::hybrid(stages),
            Architecture::Cluster => DeploymentPlan::cluster(),
        }
    }

    /// The architecture a plan is closest to (for reporting).
    pub fn architecture(&self) -> Architecture {
        match &self.kind {
            PlanKind::Cluster(_) => Architecture::Cluster,
            PlanKind::Functions(f) if f.uses_serverful() => Architecture::Hybrid,
            PlanKind::Functions(_) => Architecture::Serverless,
        }
    }

    /// A compact, stable, unique key describing every knob — used for
    /// deterministic ordering, deduplication and frontier rendering.
    ///
    /// # Example
    ///
    /// ```
    /// use metaspace::pipeline::stages;
    /// use metaspace::plan::DeploymentPlan;
    ///
    /// let st = stages(&metaspace::jobs::brain());
    /// let key = DeploymentPlan::hybrid(&st).key();
    /// assert!(key.starts_with("fn:"), "{key}");
    /// ```
    pub fn key(&self) -> String {
        match &self.kind {
            PlanKind::Cluster(c) => format!("cl:{}x{}", c.nodes, c.instance),
            PlanKind::Functions(f) => {
                let mask: String = f.backends.iter().map(|b| b.code()).collect();
                // The `:pl` / `:ck` / `:dc` / `:@region` / `:sp`
                // suffixes appear only for non-default execution,
                // recovery, region and tenancy so every pre-existing
                // (Barrier, Protected, default-region, on-demand) key
                // stays byte-stable.
                let pl = match f.execution {
                    ExecutionMode::Barrier => "",
                    ExecutionMode::Pipelined => ":pl",
                };
                let rc = f.recovery.key_suffix();
                let rg = match &f.region {
                    Some(r) => format!(":@{r}"),
                    None => String::new(),
                };
                let sp = if f.spot { ":sp" } else { "" };
                format!(
                    "fn:{mask}:mem{}:vm{}x{}:mf{:.1}:r{}{pl}{rc}{rg}{sp}",
                    f.memory_mb,
                    f.vm_count,
                    f.instance.as_deref().unwrap_or("auto"),
                    f.mem_factor,
                    f.max_attempts,
                )
            }
        }
    }
}

impl fmt::Display for DeploymentPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.name, self.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs;
    use crate::pipeline::stages;

    #[test]
    fn named_plans_mirror_architectures() {
        let st = stages(&jobs::brain());
        for arch in [
            Architecture::Serverless,
            Architecture::Hybrid,
            Architecture::Cluster,
        ] {
            let plan = DeploymentPlan::for_architecture(arch, &st);
            assert_eq!(plan.architecture(), arch, "{plan}");
        }
    }

    #[test]
    fn hybrid_assigns_stateful_stages_to_the_serverful_backend() {
        let st = stages(&jobs::xenograft());
        let PlanKind::Functions(f) = DeploymentPlan::hybrid(&st).kind else {
            panic!("hybrid is a functions plan");
        };
        for (stage, backend) in st.iter().zip(&f.backends) {
            let expect = if stage.is_stateful() {
                StageBackend::Serverful
            } else {
                StageBackend::Functions
            };
            assert_eq!(*backend, expect, "{}", stage.name);
        }
    }

    #[test]
    fn keys_distinguish_every_knob() {
        let st = stages(&jobs::brain());
        let base = DeploymentPlan::hybrid(&st);
        let PlanKind::Functions(f) = &base.kind else { unreachable!() };
        let variants = [
            FunctionsPlan { memory_mb: 3538, ..f.clone() },
            FunctionsPlan { instance: Some("r5.4xlarge".into()), ..f.clone() },
            FunctionsPlan { vm_count: 4, ..f.clone() },
            FunctionsPlan { mem_factor: 2.0, ..f.clone() },
            FunctionsPlan { max_attempts: 1, ..f.clone() },
            FunctionsPlan { execution: ExecutionMode::Pipelined, ..f.clone() },
            FunctionsPlan { recovery: RecoveryMode::Checkpointed, ..f.clone() },
            FunctionsPlan { recovery: RecoveryMode::Decentralized, ..f.clone() },
            FunctionsPlan { region: Some("aws-eu-west-1".into()), ..f.clone() },
            FunctionsPlan { spot: true, ..f.clone() },
        ];
        let mut keys = vec![base.key(), DeploymentPlan::cluster().key()];
        for v in variants {
            keys.push(DeploymentPlan::functions("v", v).key());
        }
        let unique: std::collections::BTreeSet<&String> = keys.iter().collect();
        assert_eq!(unique.len(), keys.len(), "{keys:?}");
    }

    #[test]
    fn barrier_keys_carry_no_execution_suffix() {
        // Pre-dataflow plan keys must stay byte-stable: only Pipelined
        // plans grow the `:pl` marker.
        let st = stages(&jobs::brain());
        let base = DeploymentPlan::hybrid(&st);
        assert!(!base.key().contains(":pl"), "{}", base.key());
        let PlanKind::Functions(f) = base.kind else { unreachable!() };
        let pl = DeploymentPlan::functions(
            "p",
            FunctionsPlan { execution: ExecutionMode::Pipelined, ..f },
        );
        assert!(pl.key().ends_with(":pl"), "{}", pl.key());
    }

    #[test]
    fn protected_keys_carry_no_recovery_suffix() {
        // Same byte-stability rule for the recovery knob: only
        // non-default modes grow a marker, and it composes with `:pl`.
        let st = stages(&jobs::brain());
        let base = DeploymentPlan::hybrid(&st);
        assert!(!base.key().contains(":ck"), "{}", base.key());
        assert!(!base.key().contains(":dc"), "{}", base.key());
        let PlanKind::Functions(f) = base.kind else { unreachable!() };
        let ck = DeploymentPlan::functions(
            "c",
            FunctionsPlan {
                recovery: RecoveryMode::Checkpointed,
                ..f.clone()
            },
        );
        assert!(ck.key().ends_with(":ck"), "{}", ck.key());
        let both = DeploymentPlan::functions(
            "b",
            FunctionsPlan {
                execution: ExecutionMode::Pipelined,
                recovery: RecoveryMode::Decentralized,
                ..f
            },
        );
        assert!(both.key().ends_with(":pl:dc"), "{}", both.key());
    }

    #[test]
    fn default_region_and_tenancy_carry_no_suffix() {
        // Same byte-stability rule for the provider knobs: only a
        // selected region or a spot bid grows a marker, and they
        // compose (region before tenancy).
        let st = stages(&jobs::brain());
        let base = DeploymentPlan::hybrid(&st);
        assert!(!base.key().contains(":@"), "{}", base.key());
        assert!(!base.key().contains(":sp"), "{}", base.key());
        let PlanKind::Functions(f) = base.kind else { unreachable!() };
        let rg = DeploymentPlan::functions(
            "r",
            FunctionsPlan {
                region: Some("gcp-us-central1".into()),
                ..f.clone()
            },
        );
        assert!(rg.key().ends_with(":@gcp-us-central1"), "{}", rg.key());
        let both = DeploymentPlan::functions(
            "b",
            FunctionsPlan {
                region: Some("aws-eu-west-1".into()),
                spot: true,
                ..f.clone()
            },
        );
        assert!(both.key().ends_with(":@aws-eu-west-1:sp"), "{}", both.key());
        let sp = DeploymentPlan::functions("s", FunctionsPlan { spot: true, ..f });
        assert!(sp.key().ends_with(":sp"), "{}", sp.key());
    }

    #[test]
    fn serverless_plan_never_uses_vms() {
        let st = stages(&jobs::brain());
        let PlanKind::Functions(f) = DeploymentPlan::serverless(&st).kind else {
            unreachable!()
        };
        assert!(!f.uses_serverful());
        assert!(f.uses_functions());
    }
}
