//! The annotation pipeline's stage graph.
//!
//! Figure 2 of the paper shows the Xenograft annotation as a sequence of
//! stages whose parallelism swings from tens (stateful sorts, red bars)
//! to thousands (the Cartesian comparison, grey bars). [`stages`]
//! synthesises that graph for any Table 2 job:
//!
//! 1. `load-dataset` — parse/chunk the imzML input (stateless).
//! 2. `formula-gen` — generate database formulas ("a maximum of a few
//!    hundred parallel tasks", stateless).
//! 3. `db-segment` — sort & segment the database (**stateful**, the
//!    paper's "32 tasks in database partitioning").
//! 4. `ds-segment` — sort & partition the dataset (**stateful**, the
//!    dominant all-to-all; for Xenograft this is the §4.2 sort
//!    experiment's ~25 GB / 64 GB-of-memory operation).
//! 5. `annotate` — compare dataset segments against database segments
//!    (Cartesian, massively parallel).
//! 6. `fdr` — decoy scoring (stateless).
//! 7. `collect` — group and publish results (**stateful**, small).
//!
//! Task counts and volumes derive from the Table 2 columns; CPU
//! densities are profile parameters standing in for the real datasets
//! (see [`jobs`](crate::jobs)).

use crate::jobs::JobSpec;

// The stage description types live in the `workload` crate now (the
// general stage-DAG workload layer); re-exported here so the rest of
// the workspace keeps addressing them as `metaspace::pipeline::Stage`
// and friends.
pub use workload::{Stage, StageEdge, StageKind, Workload};

/// The sort volume of the dataset segmentation stage, GB. (The paper's
/// §4.2 sort experiment processes a larger standalone volume — ~25 GB
/// under 64 GB of memory — than the in-pipeline segmentation, whose
/// stateful window Table 3 shows at ~40 % of the run.)
pub fn dataset_sort_gb(job: &JobSpec) -> f64 {
    match job.name {
        "Brain" => 0.7,
        "Xenograft" => 20.0,
        "X089" => 30.0,
        _ => job.dataset_gb * 10.0,
    }
}

/// The database segmentation volume, GB (formula envelopes + metadata).
pub fn db_sort_gb(job: &JobSpec) -> f64 {
    job.db_formulas as f64 / 1000.0 * 0.045
}

/// The job's annotation pipeline as a full workload description (the
/// canonical 9-stage graph with its dataflow edges), expressed through
/// the [`workload::families::metaspace`] family.
pub fn job_workload(job: &JobSpec) -> Workload {
    workload::families::metaspace(&workload::families::MetaspaceParams {
        name: job.name.to_owned(),
        dataset_gb: job.dataset_gb,
        db_formulas_k: job.db_formulas as f64 / 1000.0,
        max_volume_gb: job.max_volume_gb,
        annotate_cpu_secs: job.annotate_cpu_secs,
        dataset_sort_gb: dataset_sort_gb(job),
        db_sort_gb: db_sort_gb(job),
    })
}

/// Builds the stage graph for a job.
pub fn stages(job: &JobSpec) -> Vec<Stage> {
    job_workload(job).stages
}

/// The dependency edges of a stage list, one `Vec<StageEdge>` per
/// stage, aligned index-for-index.
///
/// For the canonical METASPACE stage list (the nine names [`stages`]
/// produces, in order) this is the real annotation dataflow of the
/// paper's Figure 2: the dataset branch (`load-dataset` →
/// `parse-spectra` → `ds-segment`) and the database branch
/// (`formula-gen` → `db-segment`) proceed independently until
/// `annotate` joins them — partition-wise against the dataset segments,
/// all-to-all against the (replicated) database segments — and the
/// scoring tail (`metrics` → `fdr`) chains partition-wise into the
/// final `collect` shuffle.
///
/// Any other stage list (scaled replicas keep the canonical names; toy
/// graphs in tests do not) degrades to the conservative linear chain of
/// all-to-all edges — exactly the barrier order, so dataflow scheduling
/// stays correct for arbitrary pipelines, just without overlap.
pub fn edges(stages: &[Stage]) -> Vec<Vec<StageEdge>> {
    const CANON: [&str; 9] = [
        "load-dataset",
        "parse-spectra",
        "formula-gen",
        "db-segment",
        "ds-segment",
        "annotate",
        "metrics",
        "fdr",
        "collect",
    ];
    let canonical = stages.len() == CANON.len()
        && stages.iter().zip(CANON).all(|(s, n)| s.name == n);
    if canonical {
        return vec![
            vec![],                                                       // load-dataset
            vec![StageEdge::one_to_one(0)],                               // parse-spectra
            vec![],                                                       // formula-gen
            vec![StageEdge::all_to_all(2)],                               // db-segment
            vec![StageEdge::all_to_all(1)],                               // ds-segment
            vec![StageEdge::one_to_one(4), StageEdge::all_to_all(3)],     // annotate
            vec![StageEdge::one_to_one(5)],                               // metrics
            vec![StageEdge::one_to_one(6)],                               // fdr
            vec![StageEdge::all_to_all(7)],                               // collect
        ];
    }
    (0..stages.len())
        .map(|i| {
            if i == 0 {
                vec![]
            } else {
                vec![StageEdge::all_to_all(i - 1)]
            }
        })
        .collect()
}

/// Builds a down-scaled stage graph for a job: task counts and exchange
/// volumes multiplied by `scale` (per-task work unchanged), with a
/// two-task floor so every stage still exercises parallel dispatch.
///
/// Fleet-scale traffic simulations run dozens of concurrent jobs; at
/// `scale = 1.0` a single Xenograft already spawns thousands of tasks,
/// so tenants submit scaled replicas that keep the stage *shape*
/// (elasticity swings, stateful windows) at a tractable task volume.
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn scaled_stages(job: &JobSpec, scale: f64) -> Vec<Stage> {
    scaled_workload(job, scale).stages
}

/// [`scaled_stages`] with the dataflow edges attached: the down-scaled
/// job as a full workload description. Uses the generic workload scaler
/// with this pipeline's historical floors (two tasks, 0.005 GB).
///
/// # Panics
///
/// Panics unless `0 < scale <= 1`.
pub fn scaled_workload(job: &JobSpec, scale: f64) -> Workload {
    job_workload(job).scaled_with(
        scale,
        &workload::ScaleOptions { min_tasks: 2, min_exchange_gb: 0.005 },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs;

    #[test]
    fn xenograft_shape_matches_figure2() {
        let stages = stages(&jobs::xenograft());
        assert_eq!(stages.len(), 9);
        // Stateful stages: db-segment, ds-segment, collect.
        let stateful: Vec<&str> = stages
            .iter()
            .filter(|s| s.is_stateful())
            .map(|s| s.name.as_str())
            .collect();
        assert_eq!(stateful, vec!["db-segment", "ds-segment", "collect"]);
        // db partitioning runs 32 tasks, as the paper says.
        assert_eq!(stages.iter().find(|s| s.name == "db-segment").unwrap().tasks, 32);
        // The comparison stage reaches a few thousand parallel tasks.
        let annotate = stages.iter().find(|s| s.name == "annotate").unwrap();
        assert!((1500..=4000).contains(&annotate.tasks), "{}", annotate.tasks);
    }

    #[test]
    fn elasticity_spans_orders_of_magnitude() {
        // "parallelism of a workload ranges from modestly parallel stages
        // to massive concurrency".
        let stages = stages(&jobs::xenograft());
        let min = stages.iter().map(|s| s.tasks).min().unwrap();
        let max = stages.iter().map(|s| s.tasks).max().unwrap();
        assert!(max / min >= 50, "min {min} max {max}");
    }

    #[test]
    fn xenograft_dataset_sort_matches_section_4_2() {
        // 25 GB at the 2.5x memory factor fills the 64 GB the paper
        // provisions in the sort experiment.
        let v = dataset_sort_gb(&jobs::xenograft());
        assert!((10.0..26.0).contains(&v));
    }

    #[test]
    fn bigger_jobs_have_bigger_annotate_stages() {
        let brain = stages(&jobs::brain());
        let xeno = stages(&jobs::xenograft());
        let a = |s: &[Stage]| s.iter().find(|s| s.name == "annotate").unwrap().tasks;
        assert!(a(&xeno) > 4 * a(&brain));
    }

    #[test]
    fn scaled_stages_keep_shape_at_lower_volume() {
        let full = stages(&jobs::xenograft());
        let scaled = scaled_stages(&jobs::xenograft(), 0.05);
        assert_eq!(full.len(), scaled.len());
        for (f, s) in full.iter().zip(&scaled) {
            assert_eq!(f.name, s.name);
            assert!(s.tasks >= 2);
            assert!(s.tasks <= f.tasks);
            assert_eq!(f.is_stateful(), s.is_stateful());
        }
        let tasks = |st: &[Stage]| st.iter().map(|s| s.tasks).sum::<usize>();
        assert!(tasks(&scaled) * 10 < tasks(&full));
    }

    #[test]
    fn canonical_edges_form_a_dag_joining_at_annotate() {
        let st = stages(&jobs::brain());
        let deps = edges(&st);
        assert_eq!(deps.len(), st.len());
        // Every edge is topological.
        for (i, es) in deps.iter().enumerate() {
            for e in es {
                assert!(e.from < i, "edge {} -> {i}", e.from);
            }
        }
        // Two independent roots: the dataset and database branches.
        let roots: Vec<usize> = deps
            .iter()
            .enumerate()
            .filter(|(_, es)| es.is_empty())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(roots, vec![0, 2], "load-dataset and formula-gen");
        // annotate (index 5) joins both branches.
        assert_eq!(deps[5].len(), 2);
        // Shuffles are all-to-all; map chains are one-to-one.
        assert_eq!(deps[4], vec![StageEdge::all_to_all(1)]);
        assert_eq!(deps[6], vec![StageEdge::one_to_one(5)]);
    }

    #[test]
    fn scaled_stages_keep_the_canonical_dataflow() {
        // Scaled replicas preserve stage names, so the fleet's pipelined
        // jobs get the real DAG, not the linear fallback.
        let st = scaled_stages(&jobs::xenograft(), 0.05);
        let deps = edges(&st);
        assert_eq!(deps[5].len(), 2, "annotate still joins two branches");
    }

    #[test]
    fn unknown_stage_lists_fall_back_to_a_linear_chain() {
        let mut st = stages(&jobs::brain());
        st.truncate(3);
        let deps = edges(&st);
        assert_eq!(deps[0], vec![]);
        assert_eq!(deps[1], vec![StageEdge::all_to_all(0)]);
        assert_eq!(deps[2], vec![StageEdge::all_to_all(1)]);
    }

    #[test]
    fn workload_description_matches_the_canonical_graph() {
        // The migration gate: the DSL-expressible workload description
        // must carry exactly the dataflow `edges` hard-coded for the
        // canonical stage list, for every Table 2 job, and survive a
        // text round-trip unchanged.
        for job in jobs::all() {
            let w = job_workload(&job);
            w.validate().expect("job workloads validate");
            assert_eq!(w.edges, edges(&w.stages), "{}", job.name);
            let back = workload::parse(&workload::emit(&w)).expect("round-trip parses");
            assert_eq!(back, w, "{} drifts through the DSL", job.name);
        }
    }

    #[test]
    fn scaled_workload_keeps_edges_aligned() {
        let w = scaled_workload(&jobs::xenograft(), 0.05);
        w.validate().expect("scaled workloads stay valid");
        assert_eq!(w.stages, scaled_stages(&jobs::xenograft(), 0.05));
        assert_eq!(w.edges, edges(&w.stages));
    }

    #[test]
    fn annotate_volume_covers_table2_max_volume() {
        for job in jobs::all() {
            let st = stages(&job);
            let annotate = st.iter().find(|s| s.name == "annotate").unwrap();
            let total_read_gb = annotate.tasks as f64 * annotate.read_mb_per_task / 1024.0;
            assert!(
                (total_read_gb - job.max_volume_gb).abs() / job.max_volume_gb < 0.01,
                "{}: {total_read_gb} vs {}",
                job.name,
                job.max_volume_gb
            );
        }
    }
}
