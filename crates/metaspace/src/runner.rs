//! Runs the annotation pipeline on the three studied architectures —
//! and, more generally, on any [`DeploymentPlan`].
//!
//! * [`Architecture::Serverless`] — every stage on cloud functions
//!   (the deployment METASPACE migrated to first);
//! * [`Architecture::Hybrid`] — the paper's contribution: stateless
//!   stages on cloud functions, stateful operations on right-sized VMs
//!   reused across stages through the serverful backend;
//! * [`Architecture::Cluster`] — the original fixed Spark deployment
//!   (4 × c5.4xlarge).
//!
//! The three architectures are *named plans*
//! ([`DeploymentPlan::for_architecture`]): [`run_annotation`] builds the
//! corresponding plan and hands it to [`run_plan_stages`], the single
//! execution path every deployment — hand-picked or planner-found —
//! flows through.
//!
//! Each run happens in a fresh simulated region and reports wall time,
//! cost, per-stage spans (Figure 2) and CPU-utilisation statistics
//! (Table 3).

use std::cell::Cell;
use std::fmt;
use std::rc::Rc;
use std::sync::Arc;

use cloudsim::{CloudConfig, InstanceType, ObjectBody, World};
use clustersim::{ClusterConfig, ClusterEngine, StageDef};
use serverful::executor::MapOptions;
use serverful::{
    run_dag_async, Backend, CloudEnv, Dag, DagNode, Edge, ExecError, ExecMode, ExecutorConfig,
    FunctionExecutor, Payload, RecoveryMode, RecoveryStats, RetryPolicy, ScriptTask, SizingPolicy,
};
use shuffle::tasks::Exchange;
use shuffle::SortConfig;
use simkernel::{SimDuration, SimTime};

use telemetry::UsageStats;

use crate::jobs::JobSpec;
use crate::pipeline::{self, Stage, StageEdge, StageKind, Workload};
use crate::plan::{ClusterPlan, DeploymentPlan, FunctionsPlan, PlanKind, StageBackend};

/// The deployment architecture to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Architecture {
    /// Pure cloud functions.
    Serverless,
    /// Cloud functions + serverful stateful stages (the paper's
    /// proposal).
    Hybrid,
    /// Fixed Spark-like cluster.
    Cluster,
}

impl fmt::Display for Architecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Architecture::Serverless => f.write_str("cloud functions"),
            Architecture::Hybrid => f.write_str("hybrid"),
            Architecture::Cluster => f.write_str("spark"),
        }
    }
}

/// Measured outcome of one stage.
#[derive(Debug, Clone, PartialEq)]
pub struct StageResult {
    /// Stage name.
    pub name: String,
    /// Parallel tasks the stage ran (Figure 2's bar height).
    pub tasks: usize,
    /// Wall-clock seconds.
    pub secs: f64,
    /// Offset of the stage's first activity from the run start, seconds.
    /// Under barrier execution stages tile back-to-back; under pipelined
    /// execution windows overlap (the overlap report measures by how
    /// much).
    pub start_secs: f64,
    /// Offset of the stage's last activity from the run start, seconds.
    pub end_secs: f64,
    /// Whether the stage is a stateful operation.
    pub stateful: bool,
}

/// Measured outcome of one annotation run.
#[derive(Debug, Clone)]
pub struct AnnotationReport {
    /// Job name.
    pub job: String,
    /// Architecture evaluated (derived from the plan for plan runs).
    pub arch: Architecture,
    /// End-to-end seconds.
    pub wall_secs: f64,
    /// Dollars billed.
    pub cost_usd: f64,
    /// Billed-but-wasted resources under faults/retries/stragglers, from
    /// the telemetry fault ledger: sandbox GB-seconds plus VM
    /// instance-seconds that bought no completed work. Zero in
    /// fault-free runs.
    pub waste: f64,
    /// Per-stage breakdown.
    pub stages: Vec<StageResult>,
    /// CPU-usage statistics over the run (Table 3), when measurable.
    pub cpu: Option<UsageStats>,
}

impl AnnotationReport {
    /// The paper's cost-performance metric, `1 / (latency × cost)`.
    pub fn cost_performance(&self) -> f64 {
        1.0 / (self.wall_secs * self.cost_usd)
    }
}

/// Output of a traced run: deterministic Chrome trace-event JSON (load
/// it in `chrome://tracing` or Perfetto) plus a compact text summary.
#[derive(Debug, Clone)]
pub struct TraceOutput {
    /// The full span trace as Chrome trace-event JSON. Byte-identical
    /// across runs with the same job, architecture and seed.
    pub chrome_json: String,
    /// Per-stage metrics, span census and fault/retry report.
    pub summary: String,
}

/// Runs one job on one architecture in a fresh simulated region.
///
/// # Errors
///
/// Propagates executor failures (the cluster path panics on internal
/// errors instead, as it has no fallible API).
pub fn run_annotation(
    job: &JobSpec,
    arch: Architecture,
    seed: u64,
) -> Result<AnnotationReport, ExecError> {
    run_annotation_with(job, arch, seed, CloudConfig::default())
}

/// Like [`run_annotation`], but over an explicit cloud configuration —
/// chaos experiments inject faults by enabling `cloud.faults`.
///
/// # Errors
///
/// Propagates executor failures, including exhausted retry budgets
/// under fault injection.
pub fn run_annotation_with(
    job: &JobSpec,
    arch: Architecture,
    seed: u64,
    cloud: CloudConfig,
) -> Result<AnnotationReport, ExecError> {
    let stages = pipeline::stages(job);
    let plan = DeploymentPlan::for_architecture(arch, &stages);
    run_plan_stages(job.name, &stages, &plan, seed, cloud, false).map(|(r, _)| r)
}

/// Like [`run_annotation`], but with span tracing on: also returns the
/// run's deterministic Chrome trace JSON and a text summary.
///
/// The trace covers the measured window (pipeline stage spans, job and
/// task-attempt spans, cold starts, VM lifecycles, storage transfers and
/// fault/retry instants). The cluster architecture records the coarser
/// world-level spans only.
///
/// # Errors
///
/// Propagates executor failures, like [`run_annotation`].
pub fn run_annotation_traced(
    job: &JobSpec,
    arch: Architecture,
    seed: u64,
    cloud: CloudConfig,
) -> Result<(AnnotationReport, TraceOutput), ExecError> {
    let stages = pipeline::stages(job);
    let plan = DeploymentPlan::for_architecture(arch, &stages);
    let (r, t) = run_plan_stages(job.name, &stages, &plan, seed, cloud, true)?;
    Ok((r, t.expect("traced run returns a trace")))
}

/// Runs one Table 2 job under an arbitrary [`DeploymentPlan`] in a
/// fresh, default-configured simulated region.
///
/// # Errors
///
/// Propagates executor failures and rejects malformed plans (backend
/// list not matching the stage graph, unknown instance types).
pub fn run_plan(
    job: &JobSpec,
    plan: &DeploymentPlan,
    seed: u64,
) -> Result<AnnotationReport, ExecError> {
    run_plan_with(job, plan, seed, CloudConfig::default())
}

/// Like [`run_plan`], but over an explicit cloud configuration.
///
/// # Errors
///
/// Propagates executor failures and rejects malformed plans.
pub fn run_plan_with(
    job: &JobSpec,
    plan: &DeploymentPlan,
    seed: u64,
    cloud: CloudConfig,
) -> Result<AnnotationReport, ExecError> {
    let stages = pipeline::stages(job);
    run_plan_stages(job.name, &stages, plan, seed, cloud, false).map(|(r, _)| r)
}

/// The general entry point: runs an arbitrary stage graph under an
/// arbitrary plan. `label` names the run in the report; `trace` also
/// records a span trace (returned as the second element).
///
/// This is the one execution path for every deployment: the three named
/// architectures, planner candidates, and toy stage graphs
/// (`examples/plan_search.rs`) all flow through here.
///
/// # Errors
///
/// Propagates executor failures and rejects malformed plans.
pub fn run_plan_stages(
    label: &str,
    stages: &[Stage],
    plan: &DeploymentPlan,
    seed: u64,
    cloud: CloudConfig,
    trace: bool,
) -> Result<(AnnotationReport, Option<TraceOutput>), ExecError> {
    run_plan_graph(label, stages, &pipeline::edges(stages), plan, seed, cloud, trace)
}

/// [`run_plan_stages`] with explicit dataflow edges instead of the
/// METASPACE name-matched ones — the compilation target every workload
/// description lowers to. `edges` must align index-for-index with
/// `stages` and point only at earlier stages. Cluster plans execute the
/// stage list as a barrier chain and ignore the edges.
///
/// # Errors
///
/// Propagates executor failures and rejects malformed plans or
/// misaligned/non-topological edges.
pub fn run_plan_graph(
    label: &str,
    stages: &[Stage],
    edges: &[Vec<StageEdge>],
    plan: &DeploymentPlan,
    seed: u64,
    cloud: CloudConfig,
    trace: bool,
) -> Result<(AnnotationReport, Option<TraceOutput>), ExecError> {
    validate_plan(stages, plan)?;
    validate_edges(stages, edges)?;
    match &plan.kind {
        PlanKind::Functions(f) => {
            run_functions_plan(label, stages, edges, f, seed, cloud, trace, &[])
                .map(|(r, t, _)| (r, t))
        }
        PlanKind::Cluster(c) => Ok(run_cluster_plan(label, stages, c, seed, cloud, trace)),
    }
}

/// Runs a full [`Workload`] description — validated, then compiled to
/// the stage DAG with the workload's own dataflow edges — under a plan.
/// The workload's name labels the report.
///
/// # Errors
///
/// Rejects invalid workloads and malformed plans; propagates executor
/// failures.
pub fn run_workload(
    w: &Workload,
    plan: &DeploymentPlan,
    seed: u64,
    cloud: CloudConfig,
    trace: bool,
) -> Result<(AnnotationReport, Option<TraceOutput>), ExecError> {
    w.validate()
        .map_err(|e| ExecError::Unsupported(e.to_string()))?;
    run_plan_graph(&w.name, &w.stages, &w.edges, plan, seed, cloud, trace)
}

/// Extra observability a chaos run returns alongside its report.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Recovery-machinery activity (checkpoints, re-adoptions,
    /// redispatches, continuations, master data-path ops).
    pub recovery: RecoveryStats,
    /// Routed executor events over the whole run (the clock the kill
    /// indices count against).
    pub events_routed: u64,
    /// Deterministic digest of the science outputs in the workspace
    /// bucket (recovery/continuation plumbing and warm-up keys
    /// excluded). Equal digests mean the runs produced identical
    /// outputs, however many re-executions it took.
    pub science_digest: u64,
}

/// [`run_plan_stages`] plus master-kill chaos injection:
/// the serverful pool's master VM is killed when the executor's
/// routed-event counter passes each offset in `kills` (offsets are
/// relative to the start of the measured window, after warm-up). What
/// happens next is the plan's [`RecoveryMode`]: `Protected` strands the
/// job (the run errors), `Checkpointed` boots a replacement master that
/// replays the snapshot, `Decentralized` does not care.
///
/// Only functions-family plans can host a master kill; cluster plans
/// are rejected.
///
/// # Errors
///
/// Propagates executor failures — including the stall a protected-mode
/// master kill is expected to cause — and rejects malformed or cluster
/// plans.
pub fn run_plan_stages_chaos(
    label: &str,
    stages: &[Stage],
    plan: &DeploymentPlan,
    seed: u64,
    cloud: CloudConfig,
    kills: &[u64],
) -> Result<(AnnotationReport, ChaosReport), ExecError> {
    validate_plan(stages, plan)?;
    let edges = pipeline::edges(stages);
    match &plan.kind {
        PlanKind::Functions(f) => {
            run_functions_plan(label, stages, &edges, f, seed, cloud, false, kills)
                .map(|(r, _, c)| (r, c))
        }
        PlanKind::Cluster(_) => Err(ExecError::Unsupported(
            "master-kill chaos targets the serverful master; cluster plans have none".into(),
        )),
    }
}

/// Rejects dataflow edges the lowering cannot honour: one edge list per
/// stage, each pointing only at earlier stages.
fn validate_edges(stages: &[Stage], edges: &[Vec<StageEdge>]) -> Result<(), ExecError> {
    if edges.len() != stages.len() {
        return Err(ExecError::Unsupported(format!(
            "{} stages but {} edge lists; they must align index-for-index",
            stages.len(),
            edges.len()
        )));
    }
    for (i, deps) in edges.iter().enumerate() {
        for e in deps {
            if e.from >= i {
                return Err(ExecError::Unsupported(format!(
                    "edge into stage {i} from {} is not topological",
                    e.from
                )));
            }
        }
    }
    Ok(())
}

/// Rejects plans the execution path cannot honour.
fn validate_plan(stages: &[Stage], plan: &DeploymentPlan) -> Result<(), ExecError> {
    let bad = |msg: String| Err(ExecError::Unsupported(msg));
    match &plan.kind {
        PlanKind::Functions(f) => {
            if f.backends.len() != stages.len() {
                return bad(format!(
                    "plan `{}` assigns {} stages but the graph has {}",
                    plan.name,
                    f.backends.len(),
                    stages.len()
                ));
            }
            if f.memory_mb == 0 {
                return bad(format!("plan `{}` has zero function memory", plan.name));
            }
            if f.vm_count == 0 {
                return bad(format!("plan `{}` has an empty VM fleet", plan.name));
            }
            if f.max_attempts == 0 {
                return bad(format!("plan `{}` allows zero attempts", plan.name));
            }
            if f.mem_factor.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
                return bad(format!("plan `{}` has a non-positive mem factor", plan.name));
            }
            let catalog = match &f.region {
                Some(key) => match cloudsim::region(key) {
                    Some(profile) => profile.catalog,
                    None => {
                        return bad(format!(
                            "plan `{}`: unknown region `{key}` (known: {})",
                            plan.name,
                            cloudsim::region_keys().join(", ")
                        ))
                    }
                },
                None => cloudsim::catalog(),
            };
            if let Some(name) = &f.instance {
                if !catalog.iter().any(|it| it.name == *name) {
                    return bad(format!(
                        "plan `{}`: unknown instance type `{name}` in region `{}`",
                        plan.name,
                        f.region.as_deref().unwrap_or("aws-us-east-1")
                    ));
                }
            }
        }
        PlanKind::Cluster(c) => {
            if c.nodes == 0 {
                return bad(format!("plan `{}` has an empty cluster", plan.name));
            }
            if cloudsim::instance_type(&c.instance).is_none() {
                return bad(format!(
                    "plan `{}`: unknown instance type `{}`",
                    plan.name, c.instance
                ));
            }
        }
    }
    Ok(())
}

/// Renders a world's recorded trace into its export forms.
fn trace_output(world: &World) -> TraceOutput {
    let tracer = world.tracer();
    let mut summary = tracer.summary(world.fault_ledger());
    let sched = world.sched_stats();
    summary.push_str(&format!(
        "scheduler: {} events scheduled, {} fired, {} cancelled\n",
        sched.scheduled, sched.fired, sched.cancelled
    ));
    TraceOutput {
        chrome_json: tracer.chrome_json(),
        summary,
    }
}

/// Billed-but-wasted resources recorded by a world's fault ledger.
fn ledger_waste(world: &World) -> f64 {
    let ledger = world.fault_ledger();
    ledger.wasted_gb_secs + ledger.wasted_instance_secs
}

// ----------------------------------------------------------------------
// Cloud-function / hybrid / serverful path
// ----------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn run_functions_plan(
    label: &str,
    stages: &[Stage],
    edges: &[Vec<StageEdge>],
    plan: &FunctionsPlan,
    seed: u64,
    cloud: CloudConfig,
    trace: bool,
    kills: &[u64],
) -> Result<(AnnotationReport, Option<TraceOutput>, ChaosReport), ExecError> {
    let retry = RetryPolicy {
        max_attempts: plan.max_attempts,
        ..RetryPolicy::default()
    };
    let sizing = SizingPolicy {
        mem_factor: plan.mem_factor,
        ..SizingPolicy::default()
    };
    // Region selection rewrites the config through the provider
    // registry; a spot bid with no explicit region runs in the default
    // region's market. The default path (no region, no spot) leaves the
    // caller's config untouched so pre-provider runs stay
    // byte-identical.
    let profile = match (&plan.region, plan.spot) {
        (Some(key), _) => Some(cloudsim::region(key).expect("validated above")),
        (None, true) => Some(cloudsim::default_region()),
        (None, false) => None,
    };
    let cloud = match profile {
        Some(p) => p.apply(&cloud),
        None => cloud,
    };
    let catalog = profile.map_or_else(cloudsim::catalog, |p| p.catalog);
    let mut env = CloudEnv::new(cloud, seed);
    let faas_cfg = ExecutorConfig {
        runtime_memory_mb: plan.memory_mb,
        retry: retry.clone(),
        ..ExecutorConfig::default()
    };
    let faas = FunctionExecutor::new(&mut env, Backend::faas(), faas_cfg);
    // The architecture sizes the serverful host from the largest stateful
    // operation assigned to it ("measures input size and selects the host
    // instance type based on empirically defined bounds").
    let max_exchange_bytes = stages
        .iter()
        .zip(&plan.backends)
        .filter(|(_, b)| **b == StageBackend::Serverful)
        .filter_map(|(s, _)| match s.kind {
            StageKind::Stateful { exchange_gb } => Some((exchange_gb * 1e9) as u64),
            StageKind::Stateless { .. } => None,
        })
        .max()
        .unwrap_or(0);
    let planned_itype: &InstanceType = match &plan.instance {
        Some(name) => catalog
            .iter()
            .find(|it| it.name == *name)
            .expect("validated above"),
        None => sizing.plan_from(catalog, max_exchange_bytes).0,
    };
    // Total worker processes across the serverful fleet (one per vCPU).
    let vm_workers = planned_itype.vcpus as usize * plan.vm_count;
    let mut vm = plan.uses_serverful().then(|| {
        let mut cfg = ExecutorConfig {
            retry: retry.clone(),
            ..ExecutorConfig::default() // consolidated, reuse_instances
        };
        cfg.standalone.sizing = sizing.clone();
        cfg.standalone.recovery = plan.recovery;
        if let Some(p) = profile {
            // The default master would not exist in a foreign catalog.
            cfg.standalone.master_instance = p.master_instance.to_owned();
        }
        if plan.spot {
            cfg.standalone.bid = serverful::BidPolicy::spot();
        }
        if plan.vm_count == 1 {
            cfg.standalone.instance_override = Some(planned_itype.name.to_owned());
        } else {
            cfg.standalone.exec_mode = ExecMode::Fleet {
                instance_type: planned_itype.name.to_owned(),
                count: plan.vm_count,
            };
        }
        FunctionExecutor::new(&mut env, Backend::vm(), cfg)
    });
    // Production deployments keep previously configured VMs warm ("use
    // existing, previously configured VMs"); bring the serverful host up
    // before the measured window, like the cluster baseline's excluded
    // initialisation.
    // A master-kill-survivable exchange cannot live in the master's
    // RAM: Decentralized has no master KV in the data path at all, and
    // Checkpointed would strand in-flight gathers (finished peers are
    // never re-executed, so their KV pieces would die with the master).
    // Both recovery modes therefore route fused exchanges through
    // object storage; only the paper's protected master keeps the
    // shared-memory fast path.
    let exchange = if plan.recovery == RecoveryMode::Protected {
        Exchange::Kv
    } else {
        Exchange::Storage
    };
    if let Some(vm_exec) = vm.as_mut() {
        let mut warm = SortConfig {
            chunks: 1,
            reducers: 1,
            total_bytes: 1_000_000,
            key_prefix: "warmup-".to_owned(),
            label: "warmup".to_owned(),
            ..SortConfig::default()
        };
        warm.bucket = "lithops-workspace".to_owned();
        let refs = shuffle::seed_input(&mut env, &warm);
        shuffle::run_fused_exchange(&mut env, vm_exec, &warm, &refs, vm_workers, exchange, false)?;
        env.world_mut().ledger_mut().reset();
    }
    // Tracing starts after the warm-up so the trace covers exactly the
    // measured window.
    if trace {
        env.enable_tracing();
    }
    // Kill offsets count routed events from here — after the warm-up,
    // so the same offset lands at the same point of the measured window
    // regardless of warm-up traffic.
    let event_base = env.events_routed();
    for &k in kills {
        env.arm_master_kill(0, event_base + k);
    }
    let start = env.now();
    // Lower the stage graph to a task-level DAG and run it. Barrier
    // execution replays the classic stage chain (each node blocks until
    // drained — byte-identical to the pre-dataflow runner); Pipelined
    // releases downstream partitions as their upstream dependencies
    // complete.
    let dag = build_stage_dag(stages, edges, plan, &sizing, planned_itype, vm_workers, seed, exchange);
    let ctx = StageCtx { faas, vm };
    let (env_back, ctx, result) = run_dag_async(env, ctx, dag, plan.execution);
    env = env_back;
    result?;
    if let Some(mut vm_exec) = ctx.vm {
        vm_exec.shutdown(&mut env);
    }

    let end = env.now();
    let stage_results = summarise(stages, env.timeline().spans(), start);
    let cpu = UsageStats::compute(
        env.world().cpu_monitor(),
        start,
        end,
        SimDuration::from_secs(1),
        &env.timeline().stateful_windows(),
    );
    let report = AnnotationReport {
        job: label.to_owned(),
        arch: if plan.uses_serverful() {
            Architecture::Hybrid
        } else {
            Architecture::Serverless
        },
        wall_secs: (end - start).as_secs_f64(),
        cost_usd: env.world().ledger().total(),
        waste: ledger_waste(env.world()),
        stages: stage_results,
        cpu,
    };
    let chaos = ChaosReport {
        recovery: env.recovery_stats().clone(),
        events_routed: env.events_routed() - event_base,
        science_digest: science_digest(env.world()),
    };
    Ok((report, trace.then(|| trace_output(env.world())), chaos))
}

/// Deterministic FNV-1a digest of the science outputs in the workspace
/// bucket. Recovery snapshots, decentralized bundles/counters and job
/// plumbing (`recovery/`, `jobs/`) and warm-up keys are excluded: the
/// digest covers exactly what the pipeline computed, so a killed run
/// that recovered digests identically to a fault-free one.
fn science_digest(world: &World) -> u64 {
    const BUCKET: &str = "lithops-workspace";
    let store = world.store();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    };
    for key in store.list_prefix(BUCKET, "") {
        if key.starts_with("recovery/")
            || key.starts_with("jobs/")
            || key.starts_with("warmup-")
        {
            continue;
        }
        key.as_bytes().iter().for_each(|b| mix(*b));
        mix(0);
        let body = store.get(BUCKET, &key).expect("listed key exists");
        body.len().to_le_bytes().iter().for_each(|b| mix(*b));
        if let Some(bytes) = body.bytes() {
            bytes.iter().for_each(|b| mix(*b));
        }
    }
    h
}

/// Sequential rounds a stateful exchange needs on the plan's fleet: the
/// per-VM share of the data, bounded by the (chosen or policy-picked)
/// instance's memory.
fn plan_rounds(
    sizing: &SizingPolicy,
    plan: &FunctionsPlan,
    itype: &InstanceType,
    bytes: u64,
) -> usize {
    let share = bytes.div_ceil(plan.vm_count as u64);
    if plan.instance.is_none() && plan.vm_count == 1 {
        // The paper's path: the policy both picks the instance and
        // splits into rounds against its empirical bound table.
        return sizing.plan(share).1;
    }
    // Explicit instance (or fleet): the chosen type is the bound.
    let bounded = SizingPolicy {
        max_instance_mem_gib: itype.mem_gib,
        ..sizing.clone()
    };
    if bounded.required_mem_gib(share) <= itype.mem_gib {
        1
    } else {
        bounded.plan(share).1
    }
}

/// The executors a DAG's launch closures draw on.
struct StageCtx {
    faas: FunctionExecutor,
    vm: Option<FunctionExecutor>,
}

/// Lowers a stage graph (with its dataflow edges) to a task-level
/// [`Dag`]:
///
/// * a stateless stage → one map node;
/// * a serverful stateful stage → one fused-exchange node per
///   sequential round, rounds chained all-to-all (each round's working
///   set must fully vacate the bounded fleet memory before the next);
/// * a functions stateful stage → a scatter node plus a gather node
///   joined all-to-all (the storage exchange is a full shuffle).
///
/// Stage-level in-edges attach to the stage's *first* node and point at
/// the upstream stage's *terminal* node (round chains make
/// terminal-done imply all-rounds-done, so this is exact).
#[allow(clippy::too_many_arguments)]
fn build_stage_dag(
    stages: &[Stage],
    stage_deps: &[Vec<StageEdge>],
    plan: &FunctionsPlan,
    sizing: &SizingPolicy,
    planned_itype: &InstanceType,
    vm_workers: usize,
    seed: u64,
    exchange: Exchange,
) -> Dag<StageCtx> {
    let mut dag: Dag<StageCtx> = Dag::new();
    // Terminal node index of each lowered stage.
    let mut terminal: Vec<usize> = Vec::with_capacity(stages.len());
    for (si, (stage, backend)) in stages.iter().zip(&plan.backends).enumerate() {
        let g = dag.add_group(stage.name.clone());
        let in_edges: Vec<Edge> = stage_deps[si]
            .iter()
            .map(|e| Edge {
                from: terminal[e.from],
                fan_in: e.fan_in,
            })
            .collect();
        let terminal_node = match stage.kind {
            StageKind::Stateless {
                read_spread,
                write_spread,
            } => {
                let stage_c = stage.clone();
                let on_vm = *backend == StageBackend::Serverful;
                dag.add_node(DagNode {
                    label: stage.name.clone(),
                    group: Some(g),
                    tasks: stage.tasks,
                    deps: in_edges,
                    launch: Box::new(move |ctx: &mut StageCtx, env, gated| {
                        let exec = if on_vm {
                            ctx.vm.as_mut().expect("serverful stage has a pool")
                        } else {
                            &mut ctx.faas
                        };
                        Ok(submit_stateless(
                            env,
                            exec,
                            &stage_c,
                            read_spread,
                            write_spread,
                            gated,
                        ))
                    }),
                })
            }
            StageKind::Stateful { exchange_gb } => match backend {
                StageBackend::Serverful => {
                    // The serverful path is bounded by the empirical
                    // instance table: data beyond the fleet's bounded
                    // memory is processed in sequential rounds, fused
                    // (scatter+gather in one job through shared memory).
                    let bytes = (exchange_gb * 1e9) as u64;
                    let rounds = plan_rounds(sizing, plan, planned_itype, bytes);
                    let mut prev = None;
                    for round in 0..rounds {
                        let mut cfg =
                            exchange_config(stage, exchange_gb / rounds as f64, seed);
                        cfg.key_prefix = format!("{}-{round}-", stage.name);
                        cfg.label = if rounds == 1 {
                            stage.name.clone()
                        } else {
                            format!("{}/round{round}", stage.name)
                        };
                        let deps = match prev {
                            None => in_edges.clone(),
                            Some(p) => vec![Edge::all_to_all(p)],
                        };
                        let label = cfg.label.clone();
                        prev = Some(dag.add_node(DagNode {
                            label,
                            group: Some(g),
                            tasks: vm_workers,
                            deps,
                            launch: Box::new(move |ctx: &mut StageCtx, env, gated| {
                                let vm_exec =
                                    ctx.vm.as_mut().expect("serverful stage has a pool");
                                let refs = shuffle::seed_input(env, &cfg);
                                Ok(shuffle::submit_fused_exchange(
                                    env, vm_exec, &cfg, &refs, vm_workers, exchange, gated,
                                ))
                            }),
                        }));
                    }
                    prev.expect("at least one round")
                }
                StageBackend::Functions => {
                    let cfg = exchange_config(stage, exchange_gb, seed);
                    let tasks = stage.tasks;
                    // The gather factory needs the effective scatter
                    // worker count, known only once the scatter node
                    // launches; launches run in node order, so the cell
                    // is always set before the gather reads it.
                    let scatter_workers = Rc::new(Cell::new(0usize));
                    let sw = Rc::clone(&scatter_workers);
                    let cfg_s = cfg.clone();
                    let scatter = dag.add_node(DagNode {
                        label: format!("{}/scatter", stage.name),
                        group: Some(g),
                        tasks,
                        deps: in_edges,
                        launch: Box::new(move |ctx: &mut StageCtx, env, gated| {
                            let refs = shuffle::seed_input(env, &cfg_s);
                            let (handle, workers) = shuffle::submit_scatter(
                                env,
                                &mut ctx.faas,
                                &cfg_s,
                                &refs,
                                Exchange::Storage,
                                tasks,
                                tasks,
                                gated,
                            );
                            sw.set(workers);
                            Ok(handle)
                        }),
                    });
                    dag.add_node(DagNode {
                        label: format!("{}/gather", stage.name),
                        group: Some(g),
                        tasks,
                        deps: vec![Edge::all_to_all(scatter)],
                        launch: Box::new(move |ctx: &mut StageCtx, env, gated| {
                            Ok(shuffle::submit_gather(
                                env,
                                &mut ctx.faas,
                                &cfg,
                                Exchange::Storage,
                                scatter_workers.get(),
                                tasks,
                                gated,
                            ))
                        }),
                    })
                }
            },
        };
        terminal.push(terminal_node);
    }
    dag
}

/// Seeds per-task inputs and submits a read→compute→write map without
/// blocking on it.
fn submit_stateless(
    env: &mut CloudEnv,
    exec: &mut FunctionExecutor,
    stage: &Stage,
    read_spread: usize,
    write_spread: usize,
    gated: bool,
) -> serverful::JobHandle {
    let bucket = "lithops-workspace";
    let read_bytes = (stage.read_mb_per_task * 1e6) as u64;
    let write_bytes = (stage.write_mb_per_task * 1e6) as u64;
    if read_bytes > 0 {
        for t in 0..stage.tasks {
            env.seed_object(
                bucket,
                &stateless_in_key(stage, t, read_spread),
                ObjectBody::opaque(read_bytes),
            );
        }
    }
    let stage_clone = stage.clone();
    let factory: serverful::job::TaskFactory = Arc::new(move |input: &Payload| {
        let t = input.as_u64().expect("task index") as usize;
        let mut script = ScriptTask::new();
        if read_bytes > 0 {
            script = script.get(bucket, stateless_in_key(&stage_clone, t, read_spread));
        }
        script = script.compute(stage_clone.cpu_secs_per_task);
        if write_bytes > 0 {
            script = script.put(
                bucket,
                stateless_out_key(&stage_clone, t, write_spread),
                ObjectBody::opaque(write_bytes),
            );
        }
        script.finish_value(Payload::Unit).boxed()
    });
    let inputs: Vec<Payload> = (0..stage.tasks).map(|t| Payload::U64(t as u64)).collect();
    let mut opts = MapOptions::named(stage.name.clone());
    if gated {
        opts = opts.gated();
    }
    exec.map_with(env, factory, inputs, opts)
}

fn stateless_in_key(stage: &Stage, task: usize, spread: usize) -> String {
    format!("{}-r{}/in-{task:05}", stage.name, task % spread.max(1))
}

fn stateless_out_key(stage: &Stage, task: usize, spread: usize) -> String {
    format!("{}-w{}/out-{task:05}", stage.name, task % spread.max(1))
}

/// Builds the exchange configuration of a stateful stage, splitting its
/// CPU budget evenly between the partition and merge phases.
fn exchange_config(stage: &Stage, exchange_gb: f64, seed: u64) -> SortConfig {
    let bytes = (exchange_gb * 1e9) as u64;
    // CPU density is per byte, so a partial-volume round gets a
    // proportional share of the stage's CPU budget.
    let full_gb = match stage.kind {
        StageKind::Stateful { exchange_gb } => exchange_gb,
        StageKind::Stateless { .. } => exchange_gb,
    };
    let total_cpu = stage.total_cpu_secs() * (exchange_gb / full_gb);
    let per_reducer = (bytes / stage.tasks.max(1) as u64 / 8).max(2) as f64;
    SortConfig {
        bucket: "lithops-workspace".to_owned(),
        chunks: stage.tasks,
        reducers: stage.tasks,
        total_bytes: bytes,
        real_data: false,
        partition_ns_per_byte: 0.5 * total_cpu / bytes as f64 * 1e9,
        sort_ns_per_byte_log: 0.5 * total_cpu * 1e9 / (bytes as f64 * per_reducer.log2()),
        seed,
        key_prefix: format!("{}-", stage.name),
        label: stage.name.clone(),
    }
}

/// Merges the timeline's spans (stateful stages produce scatter+gather
/// pairs, or one span per round) back into per-stage results, with
/// stage windows expressed relative to `run_start`.
fn summarise(
    stages: &[Stage],
    spans: &[telemetry::StageSpan],
    run_start: SimTime,
) -> Vec<StageResult> {
    stages
        .iter()
        .map(|stage| {
            let mine: Vec<&telemetry::StageSpan> = spans
                .iter()
                .filter(|s| {
                    s.name == stage.name || s.name.starts_with(&format!("{}/", stage.name))
                })
                .collect();
            let start = mine.iter().map(|s| s.start).min().unwrap_or(SimTime::ZERO);
            let end = mine.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO);
            StageResult {
                name: stage.name.clone(),
                tasks: stage.tasks,
                secs: end.saturating_since(start).as_secs_f64(),
                start_secs: start.saturating_since(run_start).as_secs_f64(),
                end_secs: end.saturating_since(run_start).as_secs_f64(),
                stateful: stage.is_stateful(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------------
// Cluster path
// ----------------------------------------------------------------------

fn run_cluster_plan(
    label: &str,
    stages: &[Stage],
    plan: &ClusterPlan,
    seed: u64,
    cloud: CloudConfig,
    trace: bool,
) -> (AnnotationReport, Option<TraceOutput>) {
    let mut world = World::new(cloud, seed);
    if trace {
        world.set_tracing(true);
    }
    let cluster_cfg = ClusterConfig {
        instance_type: plan.instance.clone(),
        count: plan.nodes,
        ..ClusterConfig::default()
    };
    let mut cluster = ClusterEngine::provision(&mut world, cluster_cfg);
    let start = world.now();
    let defs: Vec<StageDef> = stages.iter().map(cluster_stage).collect();
    let report = cluster.run(&mut world, &defs);
    let end = world.now();

    let stage_results: Vec<StageResult> = stages
        .iter()
        .map(|stage| {
            let span = report.timeline.span(&stage.name);
            StageResult {
                name: stage.name.clone(),
                tasks: stage.tasks,
                secs: span.map_or(0.0, |s| s.duration().as_secs_f64()),
                start_secs: span
                    .map_or(0.0, |s| s.start.saturating_since(start).as_secs_f64()),
                end_secs: span
                    .map_or(0.0, |s| s.end.saturating_since(start).as_secs_f64()),
                stateful: stage.is_stateful(),
            }
        })
        .collect();
    let cpu = UsageStats::compute(
        world.cpu_monitor(),
        start,
        end,
        SimDuration::from_secs(1),
        &report.timeline.stateful_windows(),
    );
    let annotation = AnnotationReport {
        job: label.to_owned(),
        arch: Architecture::Cluster,
        wall_secs: report.wall_secs,
        cost_usd: report.cost_usd,
        waste: ledger_waste(&world),
        stages: stage_results,
        cpu,
    };
    (annotation, trace.then(|| trace_output(&world)))
}

fn cluster_stage(stage: &Stage) -> StageDef {
    match stage.kind {
        StageKind::Stateless { read_spread, .. } => StageDef {
            name: stage.name.clone(),
            tasks: stage.tasks,
            cpu_secs_per_task: stage.cpu_secs_per_task,
            read_bytes_per_task: (stage.read_mb_per_task * 1e6) as u64,
            write_bytes_per_task: (stage.write_mb_per_task * 1e6) as u64,
            shuffle_bytes: 0,
            stateful: false,
            storage_prefix: stage.name.clone(),
            prefix_spread: read_spread,
        },
        StageKind::Stateful { exchange_gb } => {
            let bytes = (exchange_gb * 1e9) as u64;
            StageDef {
                name: stage.name.clone(),
                tasks: stage.tasks,
                cpu_secs_per_task: stage.cpu_secs_per_task,
                // The sort's input read and output write also hit object
                // storage, like the serverless path's chunks and parts.
                read_bytes_per_task: bytes / stage.tasks.max(1) as u64,
                write_bytes_per_task: bytes / stage.tasks.max(1) as u64,
                shuffle_bytes: bytes,
                stateful: true,
                storage_prefix: format!("{}-x", stage.name),
                prefix_spread: 1,
            }
        }
    }
}
