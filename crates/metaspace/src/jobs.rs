//! The Table 2 job setups and their stage profiles.
//!
//! Table 2 of the paper characterises three annotation jobs. The columns
//! reproduced verbatim:
//!
//! | name      | dataset (GB) | database (#formulas) | max volume (GB) |
//! |-----------|--------------|----------------------|-----------------|
//! | Brain     | 0.05         | 12 k                 | 37.45           |
//! | Xenograft | 1.80         | 74 k                 | 235.98          |
//! | X089      | 7.01         | 29 k                 | 174.33          |
//!
//! `annotate_cpu_secs` is the per-task CPU density of the Cartesian
//! comparison stage. The paper does not publish it directly; it is
//! back-derived from the end-to-end Spark times of Table 4 (the fixed
//! 64-slot cluster executes the comparison in waves, so its makespan
//! pins the per-task cost down) and stands in for the real datasets we
//! cannot access.

/// One annotation job setup (a row of Table 2 plus profile parameters).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Job name as the paper abbreviates it.
    pub name: &'static str,
    /// Imaging-spectrometry sample size, GB.
    pub dataset_gb: f64,
    /// Number of formulas in the molecular database.
    pub db_formulas: u32,
    /// Maximum data volume processed in a single stage, GB.
    pub max_volume_gb: f64,
    /// CPU-seconds per annotation task (profile parameter, see module
    /// docs).
    pub annotate_cpu_secs: f64,
}

/// The small testbed input.
pub fn brain() -> JobSpec {
    JobSpec {
        name: "Brain",
        dataset_gb: 0.05,
        db_formulas: 12_000,
        max_volume_gb: 37.45,
        annotate_cpu_secs: 3.5,
    }
}

/// The typical METASPACE job.
pub fn xenograft() -> JobSpec {
    JobSpec {
        name: "Xenograft",
        dataset_gb: 1.80,
        db_formulas: 74_000,
        max_volume_gb: 235.98,
        annotate_cpu_secs: 15.5,
    }
}

/// The demanding job (largest dataset).
pub fn x089() -> JobSpec {
    JobSpec {
        name: "X089",
        dataset_gb: 7.01,
        db_formulas: 29_000,
        max_volume_gb: 174.33,
        annotate_cpu_secs: 78.0,
    }
}

/// All three jobs in the paper's order.
pub fn all() -> Vec<JobSpec> {
    vec![brain(), xenograft(), x089()]
}

/// Looks a job up by its (case-insensitive) name.
pub fn by_name(name: &str) -> Option<JobSpec> {
    all().into_iter().find(|j| j.name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let b = brain();
        assert_eq!((b.dataset_gb, b.db_formulas, b.max_volume_gb), (0.05, 12_000, 37.45));
        let x = xenograft();
        assert_eq!((x.dataset_gb, x.db_formulas, x.max_volume_gb), (1.80, 74_000, 235.98));
        let v = x089();
        assert_eq!((v.dataset_gb, v.db_formulas, v.max_volume_gb), (7.01, 29_000, 174.33));
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(by_name("xenograft").unwrap().name, "Xenograft");
        assert_eq!(by_name("BRAIN").unwrap().name, "Brain");
        assert!(by_name("unknown").is_none());
    }

    #[test]
    fn parallelism_grows_superlinearly_with_dataset() {
        // The paper: "the increase in parallelism is super-linear with
        // respect to the size of the dataset" — the max volume grows much
        // faster than dataset size between Brain and Xenograft.
        let b = brain();
        let x = xenograft();
        let vol_ratio = x.max_volume_gb / b.max_volume_gb;
        let ds_ratio = x.dataset_gb / b.dataset_gb;
        assert!(vol_ratio > 1.0);
        assert!(ds_ratio > vol_ratio, "volume grows sublinearly here; parallelism derives from volume x db");
    }
}
