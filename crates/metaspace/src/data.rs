//! Synthetic imaging-mass-spectrometry data.
//!
//! A real METASPACE input is an imzML scan: for every *pixel* of a
//! tissue section, a centroided spectrum — a list of (m/z, intensity)
//! peaks. The generator plants peaks in two populations:
//!
//! * **signal** peaks at the isotopic-pattern positions of a known set
//!   of formulas (so the annotation algorithm has something real to
//!   find), localised to a region of pixels;
//! * **noise** peaks at uniformly random m/z.
//!
//! This gives ground truth for correctness tests: formulas planted with
//! high intensity must be annotated, decoys must not.

use simkernel::SimRng;

/// One centroided peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Mass-to-charge ratio.
    pub mz: f64,
    /// Intensity.
    pub intensity: f32,
}

/// The spectrum of one pixel.
#[derive(Debug, Clone, Default)]
pub struct Spectrum {
    /// Peaks sorted by m/z.
    pub peaks: Vec<Peak>,
}

/// A full (small) IMS dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Per-pixel spectra, row-major over the tissue image.
    pub pixels: Vec<Spectrum>,
}

impl Dataset {
    /// Total number of peaks across pixels.
    pub fn peak_count(&self) -> usize {
        self.pixels.iter().map(|s| s.peaks.len()).sum()
    }
}

/// A molecular formula with its predicted isotopic pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct Formula {
    /// Identifier (index in the database).
    pub id: u32,
    /// Monoisotopic m/z of the principal peak.
    pub base_mz: f64,
    /// Isotopic pattern: (m/z offset from base, relative intensity in
    /// (0, 1]), principal peak first.
    pub pattern: Vec<(f64, f32)>,
    /// Whether this is a decoy (implausible-adduct) formula used for FDR
    /// control.
    pub decoy: bool,
}

impl Formula {
    /// Absolute m/z positions of the pattern peaks.
    pub fn peak_mzs(&self) -> impl Iterator<Item = f64> + '_ {
        self.pattern.iter().map(move |(off, _)| self.base_mz + off)
    }
}

/// The m/z window instruments cover, used by generators and
/// segmentation.
pub const MZ_MIN: f64 = 100.0;
/// Upper end of the m/z window.
pub const MZ_MAX: f64 = 1000.0;

/// Generates a formula database: `targets` real formulas plus an equal
/// number of decoys (as METASPACE's FDR scheme requires).
pub fn generate_db(rng: &mut SimRng, targets: usize) -> Vec<Formula> {
    let mut db = Vec::with_capacity(targets * 2);
    for id in 0..(targets * 2) as u32 {
        let base_mz = rng.uniform(MZ_MIN, MZ_MAX - 4.0);
        // A 3-peak isotopic envelope: M, M+1, M+2 with decaying
        // intensity.
        let second = rng.uniform(0.2, 0.7) as f32;
        let pattern = vec![
            (0.0, 1.0),
            (1.003, second),
            (2.005, second * rng.uniform(0.2, 0.6) as f32),
        ];
        db.push(Formula {
            id,
            base_mz,
            pattern,
            decoy: id as usize >= targets,
        });
    }
    db
}

/// Parameters of the dataset generator.
#[derive(Debug, Clone)]
pub struct DatasetParams {
    /// Number of pixels.
    pub pixels: usize,
    /// Noise peaks per pixel.
    pub noise_peaks: usize,
    /// Fraction of pixels where planted formulas appear (a localised
    /// "tissue region").
    pub presence: f64,
    /// Instrument m/z jitter applied to planted peaks, in ppm.
    pub jitter_ppm: f64,
}

impl Default for DatasetParams {
    fn default() -> Self {
        DatasetParams {
            pixels: 64,
            noise_peaks: 60,
            presence: 0.6,
            jitter_ppm: 1.0,
        }
    }
}

/// Generates a dataset with the given formulas planted. Only non-decoy
/// formulas are planted, so decoys measure the false-discovery rate.
pub fn generate_dataset(
    rng: &mut SimRng,
    params: &DatasetParams,
    planted: &[Formula],
) -> Dataset {
    let mut pixels = Vec::with_capacity(params.pixels);
    for _ in 0..params.pixels {
        let mut peaks = Vec::with_capacity(params.noise_peaks + planted.len() * 3);
        for _ in 0..params.noise_peaks {
            peaks.push(Peak {
                mz: rng.uniform(MZ_MIN, MZ_MAX),
                intensity: rng.uniform(1.0, 50.0) as f32,
            });
        }
        for formula in planted.iter().filter(|f| !f.decoy) {
            if rng.uniform(0.0, 1.0) < params.presence {
                let scale = rng.uniform(100.0, 1000.0) as f32;
                for &(off, rel) in &formula.pattern {
                    let mz = formula.base_mz + off;
                    let jitter = mz * params.jitter_ppm * 1e-6 * rng.normal(0.0, 0.5);
                    peaks.push(Peak {
                        mz: mz + jitter,
                        intensity: scale * rel,
                    });
                }
            }
        }
        peaks.sort_by(|a, b| a.mz.total_cmp(&b.mz));
        pixels.push(Spectrum { peaks });
    }
    Dataset { pixels }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(77)
    }

    #[test]
    fn db_has_equal_targets_and_decoys() {
        let db = generate_db(&mut rng(), 50);
        assert_eq!(db.len(), 100);
        assert_eq!(db.iter().filter(|f| f.decoy).count(), 50);
        // IDs are unique.
        let mut ids: Vec<u32> = db.iter().map(|f| f.id).collect();
        ids.dedup();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn patterns_are_isotopic_envelopes() {
        let db = generate_db(&mut rng(), 10);
        for f in &db {
            assert_eq!(f.pattern.len(), 3);
            assert_eq!(f.pattern[0], (0.0, 1.0));
            assert!(f.pattern[1].1 < 1.0);
            assert!(f.pattern[2].1 < f.pattern[1].1);
            assert!((MZ_MIN..MZ_MAX).contains(&f.base_mz));
        }
    }

    #[test]
    fn dataset_spectra_are_sorted_by_mz() {
        let mut r = rng();
        let db = generate_db(&mut r, 20);
        let ds = generate_dataset(&mut r, &DatasetParams::default(), &db);
        assert_eq!(ds.pixels.len(), 64);
        for spectrum in &ds.pixels {
            assert!(spectrum
                .peaks
                .windows(2)
                .all(|w| w[0].mz <= w[1].mz));
        }
    }

    #[test]
    fn planted_formulas_appear_with_high_intensity() {
        let mut r = rng();
        let db = generate_db(&mut r, 5);
        let params = DatasetParams {
            presence: 1.0,
            ..DatasetParams::default()
        };
        let ds = generate_dataset(&mut r, &params, &db);
        let target = &db[0];
        // Every pixel should contain a strong peak near the target's
        // base m/z.
        let tol = target.base_mz * 5e-6;
        for spectrum in &ds.pixels {
            let hit = spectrum
                .peaks
                .iter()
                .any(|p| (p.mz - target.base_mz).abs() < tol && p.intensity > 50.0);
            assert!(hit, "planted peak missing in a pixel");
        }
    }

    #[test]
    fn decoys_are_not_planted() {
        let mut r = rng();
        let db = generate_db(&mut r, 5);
        let params = DatasetParams {
            noise_peaks: 0,
            presence: 1.0,
            ..DatasetParams::default()
        };
        let ds = generate_dataset(&mut r, &params, &db);
        let decoy = db.iter().find(|f| f.decoy).unwrap();
        let tol = decoy.base_mz * 5e-6;
        let hits = ds
            .pixels
            .iter()
            .flat_map(|s| s.peaks.iter())
            .filter(|p| (p.mz - decoy.base_mz).abs() < tol)
            .count();
        assert_eq!(hits, 0, "decoy formula appears in the data");
    }
}
