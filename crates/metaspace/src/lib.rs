//! The METASPACE-style metabolomics annotation workload.
//!
//! The paper validates its hybrid architecture on the METASPACE
//! metabolite-annotation pipeline: imaging-mass-spectrometry datasets are
//! compared against a database of molecular formulas to detect plausible
//! metabolites and their locations. This crate reproduces that workload
//! at two levels:
//!
//! * **Real algorithms on synthetic data** ([`data`], [`algo`]) — an IMS
//!   dataset generator (pixels × centroided spectra), a formula database
//!   generator with isotopic patterns, m/z sorting and segmentation,
//!   isotopic pattern matching, and FDR-controlled annotation with decoy
//!   formulas (the METASPACE method of Palmer et al.). Runnable at MB
//!   scale end-to-end; every step is tested for correctness.
//! * **Paper-scale pipeline profiles** ([`jobs`], [`pipeline`],
//!   [`runner`]) — the multi-stage pipeline of the paper's Figure 2 with
//!   the Table 2 job setups (Brain / Xenograft / X089), runnable on three
//!   architectures: pure cloud functions, the hybrid
//!   serverless/serverful deployment, and the fixed Spark-like cluster.
//!   These drive the reproduction of Tables 3–4 and Figures 2–4 & 6.
//!
//! Since the real METASPACE inputs (proprietary-scale IMS scans) are not
//! available here, stage shapes (task counts, data volumes, CPU
//! densities) are profile parameters derived from the paper's published
//! characterisation; see `jobs` and DESIGN.md for the mapping.

#![warn(missing_docs)]

pub mod algo;
pub mod data;
pub mod jobs;
pub mod pipeline;
pub mod plan;
pub mod runner;
pub mod workloads;

pub use jobs::JobSpec;
pub use pipeline::{Stage, StageEdge, StageKind, Workload};
pub use plan::{ClusterPlan, DeploymentPlan, FunctionsPlan, PlanKind, StageBackend};
pub use runner::{
    run_annotation, run_annotation_traced, run_annotation_with, run_plan, run_plan_graph,
    run_plan_stages, run_plan_stages_chaos, run_plan_with, run_workload, AnnotationReport,
    Architecture, ChaosReport, TraceOutput,
};
