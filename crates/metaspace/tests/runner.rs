//! Runner-level tests on the (cheap) Brain job.

use metaspace::{jobs, pipeline, run_annotation, Architecture};

#[test]
fn all_architectures_complete_brain() {
    let job = jobs::brain();
    for arch in [
        Architecture::Serverless,
        Architecture::Hybrid,
        Architecture::Cluster,
    ] {
        let report = run_annotation(&job, arch, 2).unwrap();
        assert_eq!(report.job, "Brain");
        assert_eq!(report.arch, arch);
        assert!(report.wall_secs > 10.0, "{arch}: {}", report.wall_secs);
        assert!(report.cost_usd > 0.0);
        assert_eq!(report.stages.len(), pipeline::stages(&job).len());
        // Every stage actually ran.
        for s in &report.stages {
            assert!(s.secs > 0.0, "{arch}: stage {} has no span", s.name);
        }
    }
}

#[test]
fn hybrid_runs_stateful_stages_on_vms() {
    let job = jobs::brain();
    let report = run_annotation(&job, Architecture::Hybrid, 2).unwrap();
    // The hybrid's VM spend exists, and the stateful stages are faster
    // than pure serverless (warm right-sized VM + shared memory).
    let cf = run_annotation(&job, Architecture::Serverless, 2).unwrap();
    let stateful_secs = |r: &metaspace::AnnotationReport| {
        r.stages
            .iter()
            .filter(|s| s.stateful)
            .map(|s| s.secs)
            .sum::<f64>()
    };
    assert!(
        stateful_secs(&report) < stateful_secs(&cf),
        "hybrid stateful {} vs serverless {}",
        stateful_secs(&report),
        stateful_secs(&cf)
    );
}

#[test]
fn stage_results_mark_the_paper_stateful_set() {
    let report = run_annotation(&jobs::brain(), Architecture::Serverless, 2).unwrap();
    let stateful: Vec<&str> = report
        .stages
        .iter()
        .filter(|s| s.stateful)
        .map(|s| s.name.as_str())
        .collect();
    assert_eq!(stateful, vec!["db-segment", "ds-segment", "collect"]);
}

#[test]
fn architectures_report_cpu_statistics() {
    for arch in [Architecture::Serverless, Architecture::Cluster] {
        let report = run_annotation(&jobs::brain(), arch, 2).unwrap();
        let cpu = report.cpu.expect("usage stats");
        assert!(cpu.average > 0.0 && cpu.average <= 100.0);
        assert!(cpu.max <= 100.0 + 1e-9);
        assert!(cpu.min >= 0.0);
    }
}

#[test]
fn cost_performance_is_consistent_with_parts() {
    let report = run_annotation(&jobs::brain(), Architecture::Cluster, 2).unwrap();
    let cp = report.cost_performance();
    assert!((cp - 1.0 / (report.wall_secs * report.cost_usd)).abs() < 1e-12);
}
