use metaspace::{jobs, run_annotation, Architecture};

#[test]
#[ignore]
fn probe_table4() {
    let paper = [
        ("Brain", 152.20, 105.49, 54.83),
        ("Xenograft", 351.57, 398.70, 889.54),
        ("X089", 488.86, 709.14, 2582.66),
    ];
    for (name, p_cf, p_hy, p_sp) in paper {
        let job = jobs::by_name(name).unwrap();
        let cf = run_annotation(&job, Architecture::Serverless, 1).unwrap();
        let hy = run_annotation(&job, Architecture::Hybrid, 1).unwrap();
        let sp = run_annotation(&job, Architecture::Cluster, 1).unwrap();
        eprintln!("{name}: CF {:.1}s/${:.3} (paper {p_cf}) | HY {:.1}s/${:.3} (paper {p_hy}) | SP {:.1}s/${:.3} (paper {p_sp})",
            cf.wall_secs, cf.cost_usd, hy.wall_secs, hy.cost_usd, sp.wall_secs, sp.cost_usd);
        for i in 0..cf.stages.len() {
            eprintln!("   {:>14} t={:<5} CF {:>7.1}s  HY {:>7.1}s  SP {:>7.1}s",
                cf.stages[i].name, cf.stages[i].tasks, cf.stages[i].secs, hy.stages[i].secs, sp.stages[i].secs);
        }
    }
}
